//! **cd-fleet** — shared-airspace multi-UAV co-simulation.
//!
//! The paper evaluates one container-hosted UAV under DoS; its threat
//! model — a compromised network peer flooding the companion computer —
//! is inherently multi-node. This crate opens that axis: N independent
//! [`VehicleInstance`]s (each a full machine + container + controller
//! stack) fly on the common scheduler quantum against a ground control
//! station that polls telemetry from every vehicle over rate-limited
//! radio uplinks. Fleet-level attack campaigns place the existing attack
//! timelines per-victim, broadcast, or rolling-victim via
//! [`attacks::fleet::FleetScript`].
//!
//! # Two networks: bridge and airspace
//!
//! Each vehicle owns a private **bridge** [`Network`] — its host↔container
//! veth pair, where all of its sensor, motor and attack traffic lives
//! (on the paper's testbed this bridge physically exists *inside* the
//! vehicle's companion computer). The fleet shares one **airspace**
//! [`Network`] — the radio medium — holding the GCS namespace and one
//! radio namespace per vehicle. The split is what makes the fleet
//! shardable: vehicles touch only their own bridge, so shards advance on
//! worker threads without synchronisation, while all cross-vehicle
//! traffic crosses the airspace exactly once per quantum on the
//! coordinating thread, in stable vehicle-index order.
//!
//! # Sharded parallel execution
//!
//! [`FleetConfig::with_threads`] runs the fleet on a scoped-thread worker
//! pool: vehicles are partitioned into contiguous shards, each shard runs
//! its vehicles' `advance`/`post_step` phases batch-wise up to the next
//! GCS poll boundary, and the main thread merges the per-vehicle
//! [`VehicleSnapshot`]s into the shared airspace step. Because each
//! vehicle's trajectory is a pure function of its own config and bridge,
//! and the airspace merge order is pinned to vehicle indices, a parallel
//! run at **any** thread count is byte-for-byte identical to the serial
//! run — the determinism tests enforce it.
//!
//! An N = 1 fleet run remains *byte-for-byte* identical to the classic
//! single-vehicle [`Scenario`](containerdrone_core::runner::Scenario) run
//! (the equivalence test pins this against the golden Figure 4 CSV).
//!
//! # Examples
//!
//! ```
//! use cd_fleet::{Fleet, FleetConfig};
//! use containerdrone_core::prelude::*;
//! use sim_core::time::SimDuration;
//!
//! let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(2));
//! let report = Fleet::new(FleetConfig::new(base, 3).with_threads(2)).run();
//! assert_eq!(report.outcomes.len(), 3);
//! assert!(report.outcomes.iter().all(|o| !o.result.crashed()));
//! ```

#![warn(missing_docs)]

pub mod gcs;

use std::time::{Duration, Instant};

use attacks::fleet::FleetScript;
use containerdrone_core::config::SCHED_QUANTUM;
use containerdrone_core::runner::{ScenarioResult, VehicleInstance};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::{SimDuration, SimTime};
use virt_net::net::Network;

pub use gcs::{GcsConfig, GcsView, GroundStation, VehicleSnapshot};

/// A fleet scenario: one per-vehicle base configuration replicated N
/// times, plus fleet-level attack placement, a ground station, and the
/// executor's thread count.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The per-vehicle scenario. Vehicle `i` flies this configuration
    /// with seed `base.seed + i`, so vehicle 0 reproduces the
    /// single-vehicle run exactly and the rest decorrelate.
    pub base: ScenarioConfig,
    /// Number of vehicles sharing the airspace.
    pub n_vehicles: usize,
    /// Fleet-level attack placement, compiled onto the per-vehicle
    /// timelines on top of whatever `base.attacks` already schedules.
    pub script: FleetScript,
    /// Ground-station configuration.
    pub gcs: GcsConfig,
    /// Worker threads for [`Fleet::run`] (1 = fully serial). Any value
    /// produces byte-identical reports; more threads only buy wall-clock
    /// time on multicore hosts.
    pub threads: usize,
}

impl FleetConfig {
    /// A healthy fleet of `n_vehicles` flying `base`, serial executor.
    pub fn new(base: ScenarioConfig, n_vehicles: usize) -> Self {
        FleetConfig {
            base,
            n_vehicles,
            script: FleetScript::none(),
            gcs: GcsConfig::default(),
            threads: 1,
        }
    }

    /// Replaces the fleet attack script.
    #[must_use]
    pub fn with_script(mut self, script: FleetScript) -> Self {
        self.script = script;
        self
    }

    /// Replaces the ground-station configuration.
    #[must_use]
    pub fn with_gcs(mut self, gcs: GcsConfig) -> Self {
        self.gcs = gcs;
        self
    }

    /// Sets the executor's worker-thread count (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// One vehicle plus the private bridge network it flies against. The
/// unit of sharding: a slot never touches anything outside itself while
/// advancing, so disjoint slots advance on different threads freely.
struct VehicleSlot {
    net: Network,
    vehicle: VehicleInstance,
}

/// Advances one vehicle quantum-by-quantum until it finishes or reaches
/// `target` (a poll boundary), leaving in `snap` the snapshot the GCS
/// poll at `target` must see: captured after the vehicle's `advance` for
/// that quantum, before its `post_step` — the same interleaving the
/// quantum-stepped serial loop produces.
fn run_slot_to(slot: &mut VehicleSlot, target: SimTime, snap: &mut VehicleSnapshot) {
    let VehicleSlot { net, vehicle } = slot;
    loop {
        if !vehicle.advance(net) {
            *snap = VehicleSnapshot::finished(vehicle);
            return;
        }
        let now = vehicle.now();
        let at_target = now >= target;
        if at_target {
            *snap = VehicleSnapshot::of(vehicle);
        }
        let deliveries = net.step(now);
        for &d in deliveries {
            vehicle.on_delivery(d);
        }
        vehicle.post_step();
        if at_target {
            return;
        }
    }
}

/// Runs every slot up to `target`, sharded over `threads` scoped worker
/// threads (contiguous vehicle ranges). Slots are disjoint, so the only
/// synchronisation is the scope join; snapshots land in vehicle-index
/// order regardless of which thread wrote them.
fn run_shards(
    slots: &mut [VehicleSlot],
    snapshots: &mut [VehicleSnapshot],
    target: SimTime,
    threads: usize,
) {
    if threads <= 1 || slots.len() <= 1 {
        for (slot, snap) in slots.iter_mut().zip(snapshots.iter_mut()) {
            run_slot_to(slot, target, snap);
        }
        return;
    }
    let shard = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slot_shard, snap_shard) in slots.chunks_mut(shard).zip(snapshots.chunks_mut(shard)) {
            scope.spawn(move || {
                for (slot, snap) in slot_shard.iter_mut().zip(snap_shard.iter_mut()) {
                    run_slot_to(slot, target, snap);
                }
            });
        }
    });
}

/// A fleet mid-flight: N vehicles on one quantum clock, each over its
/// private bridge network, sharing the airspace network with the GCS.
pub struct Fleet {
    slots: Vec<VehicleSlot>,
    airspace: Network,
    gcs: GroundStation,
    /// Per-vehicle snapshots captured at the latest poll boundary.
    snapshots: Vec<VehicleSnapshot>,
    now: SimTime,
    end_of_flight: SimTime,
    next_poll: SimTime,
    poll_period: SimDuration,
    threads: usize,
}

impl Fleet {
    /// Builds the whole fleet: N vehicle instances over private bridge
    /// networks, the compiled per-vehicle attack timelines, the airspace
    /// with the GCS node and its radio uplinks.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet (`n_vehicles == 0`).
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.n_vehicles > 0, "a fleet needs at least one vehicle");
        let end_of_flight = SimTime::ZERO + config.base.duration;
        let per_vehicle = config.script.compile(config.n_vehicles, end_of_flight);

        let mut slots = Vec::with_capacity(config.n_vehicles);
        for (i, extra) in per_vehicle.into_iter().enumerate() {
            let mut cfg = config.base.clone();
            cfg.seed = cfg.seed.wrapping_add(i as u64);
            for entry in extra.entries() {
                cfg.attacks = cfg.attacks.at(entry.at, entry.event.clone());
            }
            let mut net = Network::new();
            let vehicle = VehicleInstance::build(cfg, Vec::new(), &mut net);
            slots.push(VehicleSlot { net, vehicle });
        }
        let mut airspace = Network::new();
        let gcs = GroundStation::build(&mut airspace, config.n_vehicles, &config.gcs);

        let n = slots.len();
        Fleet {
            slots,
            airspace,
            gcs,
            snapshots: vec![VehicleSnapshot::default(); n],
            now: SimTime::ZERO,
            end_of_flight,
            next_poll: SimTime::ZERO,
            poll_period: SimDuration::from_hz(config.gcs.poll_hz),
            threads: config.threads.max(1),
        }
    }

    /// Current fleet time (the common quantum clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of vehicles in the fleet.
    pub fn n_vehicles(&self) -> usize {
        self.slots.len()
    }

    /// One vehicle, by index.
    pub fn vehicle(&self, index: usize) -> &VehicleInstance {
        &self.slots[index].vehicle
    }

    /// The ground station.
    pub fn gcs(&self) -> &GroundStation {
        &self.gcs
    }

    /// Advances the whole airspace by one scheduler quantum:
    ///
    /// 1. every still-flying vehicle advances (machine, physics, job
    ///    dispatch, armed attacks), steps its bridge network and runs its
    ///    telemetry/crash bookkeeping;
    /// 2. if a poll tick is due, the GCS downlink fires from the
    ///    per-vehicle snapshots, in vehicle-index order;
    /// 3. the airspace advances once and the GCS drains its sockets.
    ///
    /// Returns `false` — without advancing — once every vehicle has
    /// finished. [`Fleet::run`] batches this loop between poll
    /// boundaries (and across worker threads) without changing a byte of
    /// the outcome; `step` stays the incremental, debugger-friendly way
    /// to drive a fleet.
    pub fn step(&mut self) -> bool {
        let target = self.now + SCHED_QUANTUM;
        let poll_due = target >= self.next_poll;
        let mut any = false;
        for (slot, snap) in self.slots.iter_mut().zip(self.snapshots.iter_mut()) {
            let VehicleSlot { net, vehicle } = slot;
            if vehicle.advance(net) {
                any = true;
                if poll_due {
                    *snap = VehicleSnapshot::of(vehicle);
                }
                let deliveries = net.step(vehicle.now());
                for &d in deliveries {
                    vehicle.on_delivery(d);
                }
                vehicle.post_step();
            } else if poll_due {
                *snap = VehicleSnapshot::finished(vehicle);
            }
        }
        if !any {
            return false;
        }
        self.now = target;
        if poll_due {
            self.gcs.poll(&mut self.airspace, &self.snapshots, self.now);
            self.next_poll += self.poll_period;
        }
        self.airspace.step(self.now);
        self.gcs.drain(&mut self.airspace);
        true
    }

    /// Runs the fleet to completion on the configured executor and tears
    /// it down into the report.
    pub fn run(mut self) -> FleetReport {
        let started = Instant::now();
        self.run_to_end();
        let mut report = self.finish();
        report.wall_clock = started.elapsed();
        report
    }

    /// The batch executor behind [`Fleet::run`]: between GCS poll
    /// boundaries the vehicles are entirely independent, so each shard
    /// runs vehicle-at-a-time batches (cache-friendly: one vehicle's
    /// whole working set stays hot for thousands of quanta) and the
    /// threads only meet at poll boundaries. Byte-identical to looping
    /// [`Fleet::step`]: the per-vehicle work is the same pure function,
    /// snapshots are captured at the same interleaving point, and the
    /// airspace admits every packet at its own arrival time, so stepping
    /// it once per batch delivers exactly what per-quantum stepping
    /// would.
    fn run_to_end(&mut self) {
        let threads = self.threads.clamp(1, self.slots.len());
        loop {
            // The next poll boundary: the first quantum boundary past
            // `now` at which the poll is due.
            let mut target = self.now + SCHED_QUANTUM;
            while target < self.next_poll {
                target += SCHED_QUANTUM;
            }
            run_shards(&mut self.slots, &mut self.snapshots, target, threads);
            let furthest = self
                .slots
                .iter()
                .map(|s| s.vehicle.now())
                .max()
                .unwrap_or(self.now);
            if furthest <= self.now {
                break; // every vehicle had already finished
            }
            self.now = furthest;
            if furthest == target {
                // At least one vehicle was still flying at the poll
                // quantum, so the quantum-stepped loop would have fired
                // the poll there too.
                self.gcs.poll(&mut self.airspace, &self.snapshots, target);
                self.next_poll += self.poll_period;
            }
            self.airspace.step(self.now);
            self.gcs.drain(&mut self.airspace);
            if furthest < target {
                break; // the whole fleet finished before the boundary
            }
        }
    }

    /// Tears the fleet down into a [`FleetReport`] at the current time
    /// (`wall_clock` is left zero; [`Fleet::run`] fills it).
    pub fn finish(self) -> FleetReport {
        let Fleet {
            slots,
            airspace,
            gcs,
            now,
            end_of_flight,
            ..
        } = self;
        let views = gcs.finish(&airspace);
        let mut net_packets = airspace.packets_sent();
        let outcomes: Vec<VehicleOutcome> = slots
            .into_iter()
            .zip(views)
            .enumerate()
            .map(|(index, (slot, gcs_view))| {
                net_packets += slot.net.packets_sent();
                let result = slot.vehicle.finish(&slot.net);
                let from = result.attack_onset.unwrap_or(SimTime::from_secs(2));
                let max_deviation = result.max_deviation(from, end_of_flight);
                let deadline_skips = result
                    .task_report
                    .iter()
                    .map(|(_, stats)| stats.skips)
                    .sum();
                VehicleOutcome {
                    index,
                    seed: result.config.seed,
                    max_deviation,
                    deadline_skips,
                    gcs: gcs_view,
                    result,
                }
            })
            .collect();
        FleetReport {
            sim_steps: outcomes.iter().map(|o| o.result.sim_steps).sum(),
            net_packets,
            duration: now,
            wall_clock: Duration::ZERO,
            outcomes,
        }
    }
}

/// One vehicle's end-of-flight outcome inside a fleet run.
#[derive(Debug)]
pub struct VehicleOutcome {
    /// The vehicle's index in the fleet.
    pub index: usize,
    /// The seed it flew with (`base.seed + index`).
    pub seed: u64,
    /// Max deviation from the hover setpoint between the first attack
    /// onset (or 2 s, when unattacked) and the end of flight, metres.
    pub max_deviation: f64,
    /// Periodic releases skipped across the vehicle's task set — the
    /// fleet-level deadline-miss indicator.
    pub deadline_skips: u64,
    /// What the ground station last knew about this vehicle.
    pub gcs: GcsView,
    /// The full per-vehicle result.
    pub result: ScenarioResult,
}

impl VehicleOutcome {
    /// Compact outcome classification: `crash`, `lost-ctl` or `stable`.
    pub fn verdict(&self) -> &'static str {
        if self.result.crashed() {
            "crash"
        } else if self.max_deviation > 2.0 {
            "lost-ctl"
        } else {
            "stable"
        }
    }
}

/// Aggregated results of one fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-vehicle outcomes, in vehicle order.
    pub outcomes: Vec<VehicleOutcome>,
    /// Scheduler quanta executed, summed over all vehicle machines (the
    /// fleet steps/sec numerator).
    pub sim_steps: u64,
    /// Datagrams offered to the bridge and airspace networks combined
    /// (streams, attacks and telemetry).
    pub net_packets: u64,
    /// Fleet clock at teardown.
    pub duration: SimTime,
    /// Host wall-clock time of the run (zero unless produced by
    /// [`Fleet::run`]).
    pub wall_clock: Duration,
}

impl FleetReport {
    /// Column list of [`FleetReport::to_csv`], exposed so downstream
    /// artifact writers that prefix extra columns stay in lockstep.
    pub const CSV_HEADER: &'static str = "vehicle,seed,outcome,crashed,switch_s,\
         max_deviation_m,deadline_skips,gcs_packets,gcs_dropped,gcs_last_seen_s";

    /// Number of vehicles that crashed.
    pub fn crashes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.crashed()).count()
    }

    /// Number of vehicles whose monitor performed the Simplex switch.
    pub fn switches(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.result.switch_time.is_some())
            .count()
    }

    /// Deadline skips summed over the fleet.
    pub fn total_deadline_skips(&self) -> u64 {
        self.outcomes.iter().map(|o| o.deadline_skips).sum()
    }

    /// One CSV row per vehicle — the fleet-campaign artifact shape, and
    /// the determinism witness (two same-seed runs, at any thread counts,
    /// must render identically).
    pub fn to_csv(&self) -> String {
        let mut csv = format!("{}\n", Self::CSV_HEADER);
        for o in &self.outcomes {
            csv.push_str(&format!(
                "{},{},{},{},{},{:.4},{},{},{},{}\n",
                o.index,
                o.seed,
                o.verdict(),
                o.result.crashed(),
                o.result
                    .switch_time
                    .map(|t| format!("{:.3}", t.as_secs_f64()))
                    .unwrap_or_default(),
                o.max_deviation,
                o.deadline_skips,
                o.gcs.packets,
                o.gcs.dropped_ratelimit,
                o.gcs
                    .last_seen
                    .map(|t| format!("{:.3}", t.as_secs_f64()))
                    .unwrap_or_default(),
            ));
        }
        csv
    }
}

#[cfg(test)]
mod send_bounds {
    use super::*;

    /// The sharded executor moves whole vehicle slots (instance + bridge
    /// network, armed attacks included) onto scoped worker threads.
    #[test]
    fn vehicle_slot_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<VehicleSlot>();
        assert_send::<VehicleSnapshot>();
    }
}
