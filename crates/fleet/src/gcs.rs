//! The ground control station: one telemetry endpoint per vehicle on a
//! shared GCS namespace, each behind its own ingress rate limit.
//!
//! The GCS is a *network peer*, not a flight computer: it owns no
//! scheduler and no physics, only sockets in the shared **airspace**
//! network — the radio medium every vehicle's telemetry crosses. The
//! [`Airspace`] owns the topology (the GCS namespace and one `radio-<i>`
//! namespace per vehicle, linked by telemetry uplinks); the GCS binds one
//! rate-limited telemetry port per vehicle against it. The fleet runner
//! downlinks one telemetry datagram per still-flying vehicle over that
//! uplink on every poll tick, and the GCS drains its sockets and keeps a
//! per-vehicle [`GcsView`]. Per-client rate limits on the GCS ports mean
//! a misbehaving (or spoofed) vehicle — or an *external*
//! [`AttackerNode`](crate::attacker::AttackerNode) flooding the uplink
//! port from a hostile airspace namespace — cannot starve the other
//! clients' telemetry: the fleet-scale analogue of the paper's iptables
//! defence. Datagrams that pass the bucket but fail to decode (or claim
//! the wrong vehicle id) are counted per client as `malformed`, the
//! GCS-side evidence of injection.
//!
//! Polling reads [`VehicleSnapshot`]s rather than the vehicles
//! themselves: the sharded executor advances vehicles on worker threads
//! and hands the main thread a snapshot per vehicle (captured at the poll
//! quantum, in vehicle-index order), so the airspace sees exactly the
//! same traffic no matter how many threads produced it.

use sim_core::time::SimTime;
use virt_net::net::{Addr, LinkConfig, Network, NsId, SocketId};

use containerdrone_core::runner::VehicleInstance;

use crate::airspace::Airspace;

/// First GCS-side telemetry port; vehicle `i` reports to `base + i`.
pub const GCS_PORT_BASE: u16 = 15_000;

/// Port bound in each vehicle's radio namespace for the telemetry uplink.
pub const UPLINK_SRC_PORT: u16 = 9_050;

/// On-wire size of one telemetry datagram (see [`encode_telemetry`]).
pub const TELEMETRY_BYTES: usize = 15;

/// Ground-station configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcsConfig {
    /// Telemetry downlink rate per vehicle, Hz.
    pub poll_hz: f64,
    /// Ingress rate limit per vehicle port, packets/s (0 disables).
    pub per_client_pps: f64,
    /// Burst allowance of the per-client limit, packets.
    pub per_client_burst: f64,
    /// Radio-uplink link characteristics (vehicle radio ↔ GCS).
    pub uplink: LinkConfig,
}

impl Default for GcsConfig {
    fn default() -> Self {
        GcsConfig {
            poll_hz: 10.0,
            per_client_pps: 50.0,
            per_client_burst: 10.0,
            // A telemetry radio, not a veth pair: milliseconds of latency
            // and modest bandwidth.
            uplink: LinkConfig {
                latency: sim_core::time::SimDuration::from_millis(2),
                bandwidth: 2.0e6,
                queue_capacity: 64,
            },
        }
    }
}

/// What the fleet loop knows about one vehicle at a poll tick — the
/// hand-off between the (possibly off-thread) vehicle shards and the
/// main-thread airspace. Captured after the vehicle's `advance` for the
/// poll quantum, before its `post_step`, so every thread count sees the
/// same bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VehicleSnapshot {
    /// The vehicle's flight is over (duration reached, or 1 s past a
    /// crash); finished vehicles stop reporting.
    pub done: bool,
    /// The vehicle reports itself crashed.
    pub crashed: bool,
    /// Ground-truth position (NED, metres).
    pub position: [f64; 3],
}

impl VehicleSnapshot {
    /// Snapshot of a still-flying vehicle.
    pub fn of(vehicle: &VehicleInstance) -> Self {
        VehicleSnapshot {
            done: vehicle.done(),
            crashed: vehicle.crashed(),
            position: vehicle.position(),
        }
    }

    /// Snapshot of a vehicle that already finished its flight.
    pub fn finished(vehicle: &VehicleInstance) -> Self {
        VehicleSnapshot {
            done: true,
            crashed: vehicle.crashed(),
            position: vehicle.position(),
        }
    }
}

/// What the GCS currently believes about one vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GcsView {
    /// Telemetry datagrams received from this vehicle.
    pub packets: u64,
    /// Telemetry datagrams dropped by this client's ingress rate limit.
    pub dropped_ratelimit: u64,
    /// Datagrams on this client's port that passed the rate limit but
    /// failed to decode, or decoded with a mismatched vehicle id —
    /// injected garbage or spoofing, not radio noise (the virtual links
    /// never corrupt payloads).
    pub malformed: u64,
    /// Send timestamp of the freshest telemetry datagram received — the
    /// time the vehicle *reported*, not the (latency-delayed) arrival.
    pub last_seen: Option<SimTime>,
    /// Last reported position (NED, metres).
    pub last_position: [f64; 3],
    /// Whether the vehicle has reported itself crashed.
    pub crashed: bool,
}

/// Encodes one telemetry datagram: vehicle index (u16 LE), crashed flag
/// (u8), position as 3 × f32 LE.
pub fn encode_telemetry(buf: &mut Vec<u8>, vehicle: u16, crashed: bool, position: [f64; 3]) {
    buf.extend_from_slice(&vehicle.to_le_bytes());
    buf.push(u8::from(crashed));
    for p in position {
        buf.extend_from_slice(&(p as f32).to_le_bytes());
    }
}

/// Decodes a telemetry datagram; `None` for malformed payloads.
///
/// Hostile airspace nodes can inject arbitrary bytes onto telemetry and
/// swarm ports, so this is a hard trust boundary: truncated, oversized
/// and garbage payloads must all come back `None` — there is no panic
/// path (the length check is a single fixed-size conversion, and every
/// field read stays inside it by construction).
// cd-lint: deny(panic_paths)
pub fn decode_telemetry(payload: &[u8]) -> Option<(u16, bool, [f64; 3])> {
    let bytes: &[u8; TELEMETRY_BYTES] = payload.try_into().ok()?;
    let [v0, v1, crashed_b, words @ ..] = bytes;
    let vehicle = u16::from_le_bytes([*v0, *v1]);
    let crashed = *crashed_b != 0;
    let mut position = [0.0; 3];
    for (p, word) in position.iter_mut().zip(words.chunks_exact(4)) {
        *p = f64::from(f32::from_le_bytes(word.try_into().ok()?));
    }
    Some((vehicle, crashed, position))
}
// cd-lint: end(panic_paths)

/// The ground-station node in the shared airspace.
#[derive(Debug)]
pub struct GroundStation {
    ns: NsId,
    /// GCS-side receive socket per vehicle.
    rx: Vec<SocketId>,
    /// Vehicle-side transmit socket per vehicle (bound in the vehicle's
    /// radio namespace).
    tx: Vec<SocketId>,
    views: Vec<GcsView>,
}

impl GroundStation {
    /// Binds the GCS's telemetry endpoints against an [`Airspace`]: one
    /// rate-limited telemetry port per vehicle on the GCS namespace, one
    /// uplink source port per radio. The airspace owns the topology; the
    /// GCS is just its first tenant.
    pub fn build(air: &mut Airspace, cfg: &GcsConfig) -> Self {
        let n_vehicles = air.n_vehicles();
        let ns = air.gcs_ns();
        let mut rx = Vec::with_capacity(n_vehicles);
        let mut tx = Vec::with_capacity(n_vehicles);
        for i in 0..n_vehicles {
            let radio = air.radio(i);
            let net = air.net_mut();
            let port = GCS_PORT_BASE + i as u16;
            let sock = net.bind(ns, port).expect("gcs telemetry port free");
            if cfg.per_client_pps > 0.0 {
                net.add_rate_limit(Addr { ns, port }, cfg.per_client_pps, cfg.per_client_burst);
            }
            rx.push(sock);
            tx.push(
                net.bind(radio, UPLINK_SRC_PORT)
                    .expect("uplink source port free"),
            );
        }
        GroundStation {
            ns,
            rx,
            tx,
            views: vec![GcsView::default(); n_vehicles],
        }
    }

    /// The GCS namespace.
    pub fn netns(&self) -> NsId {
        self.ns
    }

    /// Downlinks one telemetry datagram per still-flying vehicle, in
    /// vehicle-index order (the deterministic merge order of the sharded
    /// executor).
    pub fn poll(&mut self, net: &mut Network, fleet: &[VehicleSnapshot], now: SimTime) {
        for (i, snapshot) in fleet.iter().enumerate() {
            if snapshot.done {
                continue;
            }
            let mut buf = net.take_buf();
            encode_telemetry(&mut buf, i as u16, snapshot.crashed, snapshot.position);
            let dst = Addr {
                ns: self.ns,
                port: GCS_PORT_BASE + i as u16,
            };
            let _ = net.send(self.tx[i], dst, buf, now);
        }
    }

    /// Drains every GCS socket, updating the per-vehicle views. Anything
    /// that fails the decode — or self-identifies as the wrong vehicle —
    /// counts as `malformed`: with hostile nodes on the airspace, garbage
    /// on a telemetry port is evidence, not noise.
    pub fn drain(&mut self, net: &mut Network) {
        for (i, &sock) in self.rx.iter().enumerate() {
            while let Some(pkt) = net.recv(sock) {
                match decode_telemetry(&pkt.payload) {
                    // Telemetry self-identifies; trust the socket, check
                    // the payload agrees (spoof detection hook).
                    Some((vehicle, crashed, position)) if usize::from(vehicle) == i => {
                        let view = &mut self.views[i];
                        view.packets += 1;
                        view.last_seen = Some(pkt.sent);
                        view.last_position = position;
                        view.crashed = crashed;
                    }
                    _ => self.views[i].malformed += 1,
                }
                net.recycle(pkt);
            }
        }
    }

    /// Current per-vehicle views.
    pub fn views(&self) -> &[GcsView] {
        &self.views
    }

    /// Live (mid-run) ingress-drop count on vehicle `i`'s telemetry port.
    /// [`GroundStation::finish`] folds the final value into the views;
    /// this reads the same socket counter while the run is still going —
    /// the per-window trace deltas and live metrics are built from it.
    pub fn dropped_so_far(&self, net: &Network, i: usize) -> u64 {
        net.socket_stats(self.rx[i]).dropped_ratelimit
    }

    /// Tears the GCS down into its final views, folding in the per-client
    /// rate-limit drop counters from the network.
    pub fn finish(mut self, net: &Network) -> Vec<GcsView> {
        for (view, &sock) in self.views.iter_mut().zip(&self.rx) {
            view.dropped_ratelimit = net.socket_stats(sock).dropped_ratelimit;
        }
        self.views
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_roundtrips() {
        let mut buf = Vec::new();
        encode_telemetry(&mut buf, 7, true, [1.5, -2.25, -0.5]);
        assert_eq!(buf.len(), TELEMETRY_BYTES);
        let (vehicle, crashed, position) = decode_telemetry(&buf).expect("valid datagram");
        assert_eq!(vehicle, 7);
        assert!(crashed);
        assert_eq!(position, [1.5, -2.25, -0.5]);
    }

    /// Fuzz-style decode hardening: hostile nodes inject arbitrary bytes
    /// onto the telemetry ports, so every length from empty to well past
    /// the frame size, filled with adversarial byte patterns, must decode
    /// to `None` (when mis-sized) or a finite-field tuple — and never
    /// panic.
    #[test]
    fn decode_survives_truncated_oversized_and_garbage_payloads() {
        // Deterministic LCG so the "fuzz" corpus is reproducible.
        let mut state = 0x2019_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for len in 0..=4 * TELEMETRY_BYTES {
            for _ in 0..16 {
                let payload: Vec<u8> = (0..len).map(|_| next()).collect();
                let decoded = decode_telemetry(&payload);
                if len == TELEMETRY_BYTES {
                    // Exactly-sized garbage decodes (the id check in
                    // `drain` is what rejects impostors) but every field
                    // must come out without panicking — NaN included,
                    // since f32 garbage may be NaN.
                    let (_, _, position) = decoded.expect("sized payload decodes");
                    assert_eq!(position.len(), 3);
                } else {
                    assert_eq!(decoded, None, "len {len} must be rejected");
                }
            }
        }
        // The flood payload shape hostile nodes actually send.
        assert_eq!(decode_telemetry(&[0u8; 64]), None);
        assert_eq!(decode_telemetry(&[]), None);
    }

    /// `drain` books garbage and wrong-id datagrams as malformed instead
    /// of corrupting the per-vehicle views.
    #[test]
    fn drain_counts_injected_garbage_as_malformed() {
        let mut air = Airspace::build(2, LinkConfig::default());
        let mut gcs = GroundStation::build(
            &mut air,
            &GcsConfig {
                per_client_pps: 0.0, // no limit: let everything through
                ..GcsConfig::default()
            },
        );
        let hostile = air.join_peer("attacker-0", Some(LinkConfig::default()), []);
        let net = air.net_mut();
        let tx = net.bind(hostile, 4_000).unwrap();
        let dst = Addr {
            ns: gcs.netns(),
            port: GCS_PORT_BASE,
        };
        // Garbage, a wrong-id spoof, and one genuine datagram.
        net.send(tx, dst, vec![0u8; 64], SimTime::ZERO).unwrap();
        let mut spoof = Vec::new();
        encode_telemetry(&mut spoof, 1, false, [9.0, 9.0, 9.0]); // claims vehicle 1 on port 0
        net.send(tx, dst, spoof, SimTime::ZERO).unwrap();
        let mut genuine = Vec::new();
        encode_telemetry(&mut genuine, 0, false, [0.0, 0.0, -1.0]);
        net.send(tx, dst, genuine, SimTime::ZERO).unwrap();
        net.step(SimTime::from_millis(50));
        gcs.drain(net);
        let view = gcs.views()[0];
        assert_eq!(view.malformed, 2);
        assert_eq!(view.packets, 1);
        assert_eq!(view.last_position, [0.0, 0.0, -1.0]);
    }
}
