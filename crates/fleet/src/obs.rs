//! Fleet-level observability: the poll-boundary trace drain, live
//! metrics publication, and the [`FleetObserver`] run hook.
//!
//! The fleet is where observability meets the determinism contract.
//! Vehicles record trace events into their own [`cd_obs::ObsPort`]s
//! while they advance — possibly on worker threads — and the
//! coordinating thread drains every port here, at each poll boundary,
//! in vehicle-index order: the same merge discipline the airspace
//! traffic follows, so the JSONL stream is byte-identical at any thread
//! count and under any shard partition. Fleet-scope window events (GCS
//! and swarm per-window drop deltas) are computed from coordinating-
//! thread state and interleaved right after their vehicle's own events.
//!
//! Metrics are the racy sibling: cumulative totals and gauges published
//! into a [`cd_obs::Registry`] after every batch, plus the per-packet
//! network counters the bridge/airspace stacks bump directly. A mid-run
//! scrape sees whatever has been published so far; nothing reads a
//! metric back into the simulation.

use cd_obs::metrics::{Counter, Gauge, Histogram, Registry};
use cd_obs::trace::{TraceEvent, TraceKind, TraceSink};
use sim_core::time::SimTime;
use virt_net::net::Network;

use crate::attacker::AttackerNode;
use crate::gcs::GroundStation;
use crate::swarm::SwarmLink;
use crate::{Fleet, FleetReport, VehicleSlot};

/// Callbacks around [`Fleet::run_observed`]: one after every completed
/// poll-boundary batch (with the fleet still borrowable — poll views,
/// vehicle state, executor counters), one with the final report. The
/// hook for dashboards, live plotters and campaign drivers that want to
/// watch a run without forking the executor loop.
pub trait FleetObserver {
    /// Called after each poll-boundary batch completes (merge, settle
    /// and trace/metric publication already done).
    fn on_batch(&mut self, fleet: &Fleet) {
        let _ = fleet;
    }

    /// Called once with the final report, after teardown.
    fn on_finish(&mut self, report: &FleetReport) {
        let _ = report;
    }
}

/// The no-op observer ([`Fleet::run`] delegates through it).
impl FleetObserver for () {}

/// Histogram buckets for per-window leaped quanta (a poll window is
/// 2 000 quanta at the default rates; the buckets resolve "barely
/// leaping" from "fully closed-form").
const WINDOW_LEAP_BUCKETS: [f64; 6] = [1.0, 10.0, 100.0, 500.0, 1000.0, 2000.0];

/// Pre-registered handles for every fleet metric family. Registration
/// happens once at [`Fleet::attach_metrics`]; per-batch publication is
/// pure relaxed atomic stores.
pub(crate) struct FleetMetrics {
    sim_time: Gauge,
    flying: Gauge,
    crashes: Counter,
    switches: Counter,
    deadline_skips: Counter,
    quanta_leaped: Counter,
    quanta_stepped: Counter,
    leap_fraction: Gauge,
    gcs_packets: Counter,
    gcs_dropped: Counter,
    gcs_malformed: Counter,
    swarm_rx: Counter,
    swarm_garbage: Counter,
    swarm_jam_dropped: Counter,
    attacker_packets: Counter,
    window_leap: Histogram,
    /// Per-shard EWMA cost (seconds) and shard population, indexed by
    /// shard slot (fixed label set, one series per worker thread).
    shard_cost: Vec<Gauge>,
    shard_size: Vec<Gauge>,
    /// Per-vehicle crash / Simplex-switch flags (0 or 1).
    vehicle_crashed: Vec<Gauge>,
    vehicle_switched: Vec<Gauge>,
}

impl FleetMetrics {
    pub(crate) fn register(reg: &Registry, n_vehicles: usize, threads: usize) -> Self {
        let counter = |name: &str, help: &str| reg.counter(name, help, &[]);
        let gauge = |name: &str, help: &str| reg.gauge(name, help, &[]);
        FleetMetrics {
            sim_time: gauge("cd_fleet_sim_time_seconds", "Fleet virtual clock."),
            flying: gauge("cd_fleet_vehicles_flying", "Vehicles still flying."),
            crashes: counter("cd_fleet_crashes_total", "Vehicles crashed."),
            switches: counter(
                "cd_fleet_simplex_switches_total",
                "Vehicles whose monitor switched to the safety controller.",
            ),
            deadline_skips: counter(
                "cd_fleet_deadline_skips_total",
                "Periodic releases skipped under overrun, fleet-wide.",
            ),
            quanta_leaped: reg.counter(
                "cd_fleet_quanta_total",
                "Scheduler quanta executed, by executor mode.",
                &[("mode", "leaped")],
            ),
            quanta_stepped: reg.counter(
                "cd_fleet_quanta_total",
                "Scheduler quanta executed, by executor mode.",
                &[("mode", "stepped")],
            ),
            leap_fraction: gauge(
                "cd_fleet_leap_fraction",
                "Fraction of quanta the time-leap executor advanced in closed form.",
            ),
            gcs_packets: counter(
                "cd_fleet_gcs_packets_total",
                "Telemetry datagrams the GCS received.",
            ),
            gcs_dropped: counter(
                "cd_fleet_gcs_dropped_total",
                "Telemetry datagrams dropped by GCS ingress rate limits.",
            ),
            gcs_malformed: counter(
                "cd_fleet_gcs_malformed_total",
                "Datagrams on GCS telemetry ports that failed decode or id check.",
            ),
            swarm_rx: counter(
                "cd_fleet_swarm_rx_total",
                "Valid V2V neighbor broadcasts received.",
            ),
            swarm_garbage: counter(
                "cd_fleet_swarm_garbage_total",
                "Swarm-port datagrams that failed decode or claimed a non-neighbor.",
            ),
            swarm_jam_dropped: counter(
                "cd_fleet_swarm_jam_dropped_total",
                "Swarm-port datagrams dropped by rate limit or queue overflow.",
            ),
            attacker_packets: counter(
                "cd_fleet_attacker_packets_total",
                "Datagrams offered by external attacker nodes.",
            ),
            window_leap: reg.histogram(
                "cd_fleet_window_leap_quanta",
                "Per-vehicle quanta leaped per poll window.",
                &[],
                &WINDOW_LEAP_BUCKETS,
            ),
            shard_cost: (0..threads)
                .map(|k| {
                    reg.gauge(
                        "cd_fleet_shard_cost_seconds",
                        "EWMA per-batch cost of the vehicles in a shard slot.",
                        &[("shard", &k.to_string())],
                    )
                })
                .collect(),
            shard_size: (0..threads)
                .map(|k| {
                    reg.gauge(
                        "cd_fleet_shard_vehicles",
                        "Vehicles assigned to a shard slot in the latest batch.",
                        &[("shard", &k.to_string())],
                    )
                })
                .collect(),
            vehicle_crashed: (0..n_vehicles)
                .map(|i| {
                    reg.gauge(
                        "cd_fleet_vehicle_crashed",
                        "1 once the vehicle's physics declared a crash.",
                        &[("vehicle", &i.to_string())],
                    )
                })
                .collect(),
            vehicle_switched: (0..n_vehicles)
                .map(|i| {
                    reg.gauge(
                        "cd_fleet_vehicle_switched",
                        "1 once the vehicle's monitor performed the Simplex switch.",
                        &[("vehicle", &i.to_string())],
                    )
                })
                .collect(),
        }
    }
}

/// The fleet's observability state: the optional trace sink, the
/// optional metric handles, and the per-vehicle previous-value ledgers
/// the per-window deltas are computed against. All-`None` (the default)
/// costs one branch per boundary — the zero-alloc and perf gates run
/// with this compiled in.
#[derive(Default)]
pub(crate) struct FleetObs {
    pub(crate) sink: Option<TraceSink>,
    pub(crate) metrics: Option<FleetMetrics>,
    /// (rate-limit drops, malformed) per vehicle at the last boundary.
    prev_gcs: Vec<(u64, u64)>,
    /// (jam drops, garbage) per vehicle at the last boundary.
    prev_swarm: Vec<(u64, u64)>,
    /// Quanta leaped per vehicle at the last boundary (histogram feed).
    prev_leaped: Vec<u64>,
    /// Shard assignment at the last parallel batch (rebalance detection).
    prev_bins: Vec<Vec<usize>>,
}

impl FleetObs {
    /// `true` when any surface is attached; everything below early-outs
    /// on `false`.
    pub(crate) fn active(&self) -> bool {
        self.sink.is_some() || self.metrics.is_some()
    }

    /// Sizes the previous-value ledgers (idempotent; called at attach).
    pub(crate) fn ensure_ledgers(&mut self, n_vehicles: usize) {
        self.prev_gcs.resize(n_vehicles, (0, 0));
        self.prev_swarm.resize(n_vehicles, (0, 0));
        self.prev_leaped.resize(n_vehicles, 0);
    }

    /// The poll-boundary observation pass, on the coordinating thread:
    /// drains every vehicle's trace port (vehicle-index order), emits
    /// the per-window GCS/swarm delta events right after their vehicle,
    /// emits shard-rebalance events (masked out of deterministic
    /// streams), and republishes the metric families.
    #[allow(clippy::too_many_arguments)] // one call site; bundling would just rename the fleet's fields
    pub(crate) fn boundary(
        &mut self,
        slots: &mut [VehicleSlot],
        net: &Network,
        gcs: &GroundStation,
        swarm: Option<&SwarmLink>,
        attackers: &[AttackerNode],
        now: SimTime,
        bins: Option<&[Vec<usize>]>,
        costs: &[f64],
    ) {
        if let Some(sink) = &mut self.sink {
            for (i, slot) in slots.iter_mut().enumerate() {
                slot.vehicle.obs_port().drain(|ev| sink.write_event(ev));

                let window = TraceEvent {
                    t: now,
                    ord: i as u32,
                    kind: TraceKind::GcsWindow,
                    label: "",
                    a: 0,
                    b: 0,
                };
                let dropped = gcs.dropped_so_far(net, i);
                let malformed = gcs.views()[i].malformed;
                let (pd, pm) = self.prev_gcs[i];
                if dropped != pd || malformed != pm {
                    sink.write_event(&TraceEvent {
                        a: dropped - pd,
                        b: malformed - pm,
                        ..window
                    });
                    self.prev_gcs[i] = (dropped, malformed);
                }
                if let Some(swarm) = swarm {
                    let jammed = swarm.jam_dropped_so_far(net, i);
                    let garbage = swarm.views()[i].rx_garbage;
                    let (pj, pg) = self.prev_swarm[i];
                    if jammed != pj || garbage != pg {
                        sink.write_event(&TraceEvent {
                            kind: TraceKind::SwarmWindow,
                            a: jammed - pj,
                            b: garbage - pg,
                            ..window
                        });
                        self.prev_swarm[i] = (jammed, garbage);
                    }
                }
            }
            if let Some(bins) = bins {
                if self.prev_bins.as_slice() != bins {
                    for (k, bin) in bins.iter().enumerate() {
                        sink.write_event(&TraceEvent {
                            t: now,
                            ord: k as u32,
                            kind: TraceKind::ShardRebalance,
                            label: "",
                            a: bin.len() as u64,
                            b: bin.first().copied().unwrap_or(0) as u64,
                        });
                    }
                    self.prev_bins = bins.to_vec();
                }
            }
        }

        if let Some(m) = &self.metrics {
            let mut crashes = 0u64;
            let mut switches = 0u64;
            let mut skips = 0u64;
            let mut leaped = 0u64;
            let mut steps = 0u64;
            let mut flying = 0u64;
            for (i, slot) in slots.iter().enumerate() {
                let v = &slot.vehicle;
                let crashed = v.crashed();
                let switched = v.simplex_switches() > 0;
                crashes += u64::from(crashed);
                switches += u64::from(switched);
                if let Some(g) = m.vehicle_crashed.get(i) {
                    g.set(f64::from(u8::from(crashed)));
                }
                if let Some(g) = m.vehicle_switched.get(i) {
                    g.set(f64::from(u8::from(switched)));
                }
                skips += v.sched_obs().deadline_skips;
                leaped += v.quanta_leaped();
                steps += v.sim_steps();
                flying += u64::from(!v.done());
                let window = v.quanta_leaped() - self.prev_leaped[i];
                if window > 0 {
                    m.window_leap.observe(window as f64);
                }
                self.prev_leaped[i] = v.quanta_leaped();
            }
            m.sim_time.set(now.as_secs_f64());
            m.flying.set(flying as f64);
            m.crashes.store(crashes);
            m.switches.store(switches);
            m.deadline_skips.store(skips);
            m.quanta_leaped.store(leaped);
            m.quanta_stepped.store(steps - leaped);
            m.leap_fraction.set(if steps > 0 {
                leaped as f64 / steps as f64
            } else {
                0.0
            });

            let mut packets = 0u64;
            let mut dropped = 0u64;
            let mut malformed = 0u64;
            for (i, view) in gcs.views().iter().enumerate() {
                packets += view.packets;
                malformed += view.malformed;
                dropped += gcs.dropped_so_far(net, i);
            }
            m.gcs_packets.store(packets);
            m.gcs_dropped.store(dropped);
            m.gcs_malformed.store(malformed);
            if let Some(swarm) = swarm {
                let mut rx = 0u64;
                let mut garbage = 0u64;
                let mut jammed = 0u64;
                for (i, view) in swarm.views().iter().enumerate() {
                    rx += view.rx_msgs;
                    garbage += view.rx_garbage;
                    jammed += swarm.jam_dropped_so_far(net, i);
                }
                m.swarm_rx.store(rx);
                m.swarm_garbage.store(garbage);
                m.swarm_jam_dropped.store(jammed);
            }
            m.attacker_packets
                .store(attackers.iter().map(AttackerNode::packets_sent).sum());

            match bins {
                Some(bins) => {
                    for (k, (cost_g, size_g)) in m.shard_cost.iter().zip(&m.shard_size).enumerate()
                    {
                        match bins.get(k) {
                            Some(bin) => {
                                cost_g.set(bin.iter().map(|&i| costs[i]).sum());
                                size_g.set(bin.len() as f64);
                            }
                            None => {
                                cost_g.set(0.0);
                                size_g.set(0.0);
                            }
                        }
                    }
                }
                None => {
                    // Serial batch: everything in shard slot 0.
                    if let (Some(cost_g), Some(size_g)) =
                        (m.shard_cost.first(), m.shard_size.first())
                    {
                        cost_g.set(costs.iter().sum());
                        size_g.set(slots.len() as f64);
                    }
                }
            }
        }
    }

    /// Flushes the trace sink (the final drain already ran through
    /// [`FleetObs::boundary`]).
    pub(crate) fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }
}
