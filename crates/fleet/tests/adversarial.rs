//! Behaviour of the adversarial airspace: external attacker nodes are
//! *bounded* by the same token-bucket defences that bound onboard
//! attackers, and their damage stays confined to the victim endpoint.

use attacks::fleet::{FleetScript, FleetTarget};
use attacks::script::AttackEvent;
use attacks::udp_flood::UdpFlood;
use cd_fleet::{AttackerConfig, Fleet, FleetConfig, SwarmConfig, SwarmTopology};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::{SimDuration, SimTime};

fn base(secs: u64) -> ScenarioConfig {
    ScenarioConfig::healthy().with_duration(SimDuration::from_secs(secs))
}

fn flood() -> AttackEvent {
    AttackEvent::UdpFlood(UdpFlood::against_motor_port())
}

/// A 20 kpps uplink flood against one vehicle's GCS telemetry port: the
/// per-client token bucket bounds what the attacker lands, the victim is
/// still heard, and every other client's telemetry is untouched —
/// byte-for-byte the same views as an attack-free run.
#[test]
fn gcs_uplink_flood_saturation_is_bounded_by_the_token_bucket() {
    let victim = 1usize;
    let script = FleetScript::new().at(
        SimTime::from_secs(1),
        FleetTarget::GcsUplink(victim),
        flood(),
    );
    let attacked = Fleet::new(FleetConfig::new(base(4), 4).with_script(script)).run();
    let baseline = Fleet::new(FleetConfig::new(base(4), 4)).run();

    assert!(
        attacked.attacker_packets > 50_000,
        "the flood barely fired: {}",
        attacked.attacker_packets
    );
    let v = &attacked.outcomes[victim];
    // The bucket admits at most pps * window + burst datagrams in total
    // (genuine + garbage); with the default 50 pps / 10 burst over a 4 s
    // flight that is a hard ceiling of 210.
    let landed = v.gcs.packets + v.gcs.malformed;
    assert!(
        landed <= 210,
        "token bucket failed to bound attacker impact: {landed} datagrams landed"
    );
    assert!(v.gcs.malformed > 0, "no flood garbage was even observed");
    assert!(
        v.gcs.packets > 0,
        "the victim's genuine telemetry was fully starved"
    );
    assert!(
        v.gcs.dropped_ratelimit > 50_000,
        "the flood was not absorbed by the rate limit: {} drops",
        v.gcs.dropped_ratelimit
    );
    // Collateral check: the other clients' views are *identical* to an
    // attack-free fleet — per-client buckets isolate the blast radius.
    for i in (0..4).filter(|&i| i != victim) {
        assert_eq!(
            attacked.outcomes[i].gcs, baseline.outcomes[i].gcs,
            "vehicle {i}'s telemetry view was perturbed by an attack on vehicle {victim}"
        );
        assert_eq!(attacked.outcomes[i].gcs.malformed, 0);
    }
}

/// Jamming one vehicle's V2V port: the per-port token bucket absorbs the
/// 20 kpps jam (drops counted as the jammer's footprint), the garbage
/// that lands stays inside the bucket's budget, the victim keeps hearing
/// its neighbors — and the rest of the ring is untouched. The V2V
/// analogue of the paper's iptables defence.
#[test]
fn swarm_jam_is_bounded_and_confined_to_the_jammed_port() {
    let victim = 2usize;
    let script = FleetScript::new().at(
        SimTime::from_secs(1),
        FleetTarget::SwarmJam(victim),
        flood(),
    );
    let cfg = |script: FleetScript| {
        FleetConfig::new(base(4), 5)
            .with_script(script)
            .with_swarm(SwarmConfig::default())
    };
    let jammed = Fleet::new(cfg(script)).run();
    let baseline = Fleet::new(cfg(FleetScript::none())).run();

    let v = &jammed.outcomes[victim];
    assert!(v.swarm.dropped_jam > 10_000, "jam never pressured the port");
    // Jam garbage that got past the bucket is bounded by its budget:
    // pps * jam window + burst = 100 * 3 + 20.
    assert!(
        v.swarm.rx_garbage > 0 && v.swarm.rx_garbage <= 320,
        "jam garbage outside the bucket budget: {}",
        v.swarm.rx_garbage
    );
    // Genuine coordination survives: neighbor broadcasts arrive early in
    // each refill window, so the bucket defence keeps nearly all of them.
    assert!(
        v.swarm.rx_msgs * 10 >= baseline.outcomes[victim].swarm.rx_msgs * 8,
        "the jam starved the victim's V2V stream despite the rate limit: {} vs {}",
        v.swarm.rx_msgs,
        baseline.outcomes[victim].swarm.rx_msgs
    );
    for i in (0..5).filter(|&i| i != victim) {
        assert_eq!(
            jammed.outcomes[i].swarm, baseline.outcomes[i].swarm,
            "vehicle {i}'s swarm view was perturbed by a jam on vehicle {victim}"
        );
    }
    // The vehicles themselves (physics, control, telemetry) are fully
    // untouched by a pure airspace attack.
    for (a, b) in jammed.outcomes.iter().zip(&baseline.outcomes) {
        assert_eq!(
            a.result.telemetry.to_csv(),
            b.result.telemetry.to_csv(),
            "vehicle {} flight perturbed by V2V jamming",
            a.index
        );
    }
}

/// A healthy swarm on a mesh topology: everyone hears `2 * degree`
/// neighbors, tracks separations, and the GCS sees no malformed traffic.
#[test]
fn mesh_swarm_coordinates_without_attacks() {
    let cfg = FleetConfig::new(base(2), 6).with_swarm(SwarmConfig {
        topology: SwarmTopology::Mesh { degree: 2 },
        ..SwarmConfig::default()
    });
    let report = Fleet::new(cfg).run();
    for o in &report.outcomes {
        assert!(
            o.swarm.rx_msgs >= 4 * 10,
            "vehicle {} heard only {} broadcasts",
            o.index,
            o.swarm.rx_msgs
        );
        assert_eq!(o.swarm.rx_garbage, 0);
        assert_eq!(o.swarm.dropped_jam, 0);
        assert!(o.swarm.last_heard.is_some());
        // All six hover around the same setpoint with decorrelated noise:
        // separations are small but tracked.
        let sep = o.swarm.min_separation.expect("separation tracked");
        assert!(sep < 1.0, "vehicle {} separation {sep}", o.index);
        assert_eq!(o.gcs.malformed, 0);
    }
    assert_eq!(report.attacker_packets, 0);
}

/// Attacker entries spread across multiple hostile namespaces by victim
/// (`victim % nodes`), every populated node joins the airspace and
/// fires, and the multi-node campaign is deterministic run-to-run. Node
/// count is real topology — two transmitters mean two links with their
/// own serialisers — so reports legitimately differ from the single-node
/// assignment, but never between identical runs.
#[test]
fn multiple_attacker_nodes_split_the_campaign_deterministically() {
    let config = || {
        let script = FleetScript::new()
            .at(SimTime::from_secs(1), FleetTarget::GcsUplink(0), flood())
            .at(SimTime::from_secs(1), FleetTarget::GcsUplink(1), flood())
            .at(
                SimTime::from_secs(2),
                FleetTarget::GcsUplink(0),
                AttackEvent::CeaseFire,
            );
        FleetConfig::new(base(3), 3)
            .with_script(script)
            .with_attacker(AttackerConfig {
                nodes: 2,
                ..AttackerConfig::default()
            })
    };
    let single = Fleet::new(
        FleetConfig::new(base(3), 3).with_script(FleetScript::new().at(
            SimTime::from_secs(1),
            FleetTarget::GcsUplink(0),
            flood(),
        )),
    );
    assert_eq!(single.attackers().len(), 1, "one node by default");

    let fleet = Fleet::new(config());
    assert_eq!(
        fleet.attackers().len(),
        2,
        "victims 0 and 1 get separate nodes"
    );
    // The hostile peers are auditable from the topology alone: find them
    // by name and check how they were wired into radio range.
    let air = fleet.airspace();
    let hostile_link = AttackerConfig::default().link;
    for name in ["attacker-0", "attacker-1"] {
        let ns = air
            .net()
            .find_namespace(name)
            .unwrap_or_else(|| panic!("{name} never joined the airspace"));
        assert_eq!(air.net().link_config(ns, air.gcs_ns()), Some(hostile_link));
        for v in 0..3 {
            assert_eq!(air.net().link_config(ns, air.radio(v)), Some(hostile_link));
        }
    }
    assert_eq!(air.net().find_namespace("attacker-2"), None);
    let a = fleet.run();
    let b = Fleet::new(config()).run();
    assert_eq!(
        a.to_csv(),
        b.to_csv(),
        "multi-node campaign not deterministic"
    );
    assert_eq!(a.attacker_packets, b.attacker_packets);
    // Both victims' ports saw hostile pressure from their own node.
    for victim in [0usize, 1] {
        assert!(
            a.outcomes[victim].gcs.dropped_ratelimit > 1_000,
            "vehicle {victim}'s node never fired"
        );
    }
    assert_eq!(
        a.outcomes[2].gcs.malformed, 0,
        "unattacked client untouched"
    );
}

/// Jamming a fleet that has no swarm configured is a misconfiguration,
/// caught at build time.
#[test]
#[should_panic(expected = "SwarmJam targets need with_swarm")]
fn swarm_jam_without_a_swarm_is_rejected() {
    let script = FleetScript::new().at(SimTime::from_secs(1), FleetTarget::SwarmJam(0), flood());
    let _ = Fleet::new(FleetConfig::new(base(2), 2).with_script(script));
}
