//! The sharded executor's determinism guarantee: a fleet run is a pure
//! function of its configuration — the thread count (and the batch
//! granularity behind [`Fleet::run`]) must never leak into a single byte
//! of the report.

use attacks::fleet::{FleetScript, FleetTarget};
use attacks::script::AttackEvent;
use attacks::udp_flood::UdpFlood;
use cd_fleet::{Fleet, FleetConfig, FleetReport, Partition, SwarmConfig};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::{SimDuration, SimTime};

fn mixed_config(n: usize) -> FleetConfig {
    let script = FleetScript::new()
        .at(
            SimTime::from_secs(1),
            FleetTarget::Rolling {
                period: SimDuration::from_millis(500),
            },
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(2),
            FleetTarget::Vehicle(3),
            AttackEvent::KillComplex,
        );
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3));
    FleetConfig::new(base, n).with_script(script)
}

/// The acceptance-criteria scenario: a 25-UAV mixed-attack campaign must
/// produce byte-identical reports at every thread count — worker-pool
/// sharding, batch boundaries and merge order all cancel out.
#[test]
fn mixed_25_uav_campaign_is_byte_identical_across_thread_counts() {
    let serial = Fleet::new(mixed_config(25)).run();
    let serial_csv = serial.to_csv();
    for threads in [2usize, 8] {
        let parallel = Fleet::new(mixed_config(25).with_threads(threads)).run();
        assert_eq!(
            serial_csv,
            parallel.to_csv(),
            "fleet report diverged at {threads} threads"
        );
        assert_eq!(serial.sim_steps, parallel.sim_steps);
        assert_eq!(serial.net_packets, parallel.net_packets);
        assert_eq!(serial.duration, parallel.duration);
        // Deep check on a sample of vehicles: full telemetry byte
        // equality, not just the report rows.
        for i in [0usize, 3, 12, 24] {
            assert_eq!(
                serial.outcomes[i].result.telemetry.to_csv(),
                parallel.outcomes[i].result.telemetry.to_csv(),
                "vehicle {i} telemetry diverged at {threads} threads"
            );
            assert_eq!(
                serial.outcomes[i].gcs, parallel.outcomes[i].gcs,
                "vehicle {i} GCS view diverged at {threads} threads"
            );
        }
    }
}

/// The full adversarial airspace: V2V swarm streams on a ring, an
/// onboard rolling flood, and external attacker nodes flooding a GCS
/// uplink and jamming a swarm port.
fn adversarial_config(n: usize) -> FleetConfig {
    let script = FleetScript::new()
        .at(
            SimTime::from_secs(1),
            FleetTarget::Rolling {
                period: SimDuration::from_millis(500),
            },
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(1),
            FleetTarget::GcsUplink(3),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_millis(1500),
            FleetTarget::SwarmJam(5),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_millis(2500),
            FleetTarget::GcsUplink(3),
            AttackEvent::CeaseFire,
        );
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3));
    FleetConfig::new(base, n)
        .with_script(script)
        .with_swarm(SwarmConfig::default())
}

fn assert_reports_equal(a: &FleetReport, b: &FleetReport, label: &str) {
    assert_eq!(a.to_csv(), b.to_csv(), "fleet report diverged: {label}");
    assert_eq!(a.sim_steps, b.sim_steps, "{label}");
    assert_eq!(a.net_packets, b.net_packets, "{label}");
    assert_eq!(a.attacker_packets, b.attacker_packets, "{label}");
    assert_eq!(a.duration, b.duration, "{label}");
}

/// The tentpole acceptance scenario: a 25-UAV swarm campaign with V2V
/// streams and external attacker nodes must produce byte-identical
/// reports at every thread count — the swarm broadcasts, attacker turns
/// and GCS downlink all merge on the coordinating thread in pinned
/// order, so sharding cannot leak in.
#[test]
fn swarm_and_attacker_campaign_is_byte_identical_across_thread_counts() {
    let serial = Fleet::new(adversarial_config(25)).run();
    // Non-degeneracy: the campaign really exercised every new surface.
    assert!(serial.attacker_packets > 0, "attacker nodes never fired");
    assert!(
        serial.outcomes.iter().all(|o| o.swarm.rx_msgs > 0),
        "some vehicle heard no V2V traffic"
    );
    assert!(
        serial.outcomes[5].swarm.dropped_jam > 0,
        "the jam never pressured vehicle 5's swarm port"
    );
    assert!(
        serial.outcomes[3].gcs.malformed > 0,
        "no attacker garbage reached vehicle 3's telemetry port"
    );
    for threads in [2usize, 8] {
        let parallel = Fleet::new(adversarial_config(25).with_threads(threads)).run();
        assert_reports_equal(&serial, &parallel, &format!("{threads} threads"));
        for i in [0usize, 3, 5, 24] {
            assert_eq!(
                serial.outcomes[i].result.telemetry.to_csv(),
                parallel.outcomes[i].result.telemetry.to_csv(),
                "vehicle {i} telemetry diverged at {threads} threads"
            );
            assert_eq!(serial.outcomes[i].gcs, parallel.outcomes[i].gcs);
            assert_eq!(serial.outcomes[i].swarm, parallel.outcomes[i].swarm);
        }
    }
}

/// Load-balanced and contiguous partitioning are wall-clock strategies,
/// not semantics: the same campaign under both must render identical
/// reports (the load balancer's wall-clock cost observations never touch
/// simulation state).
#[test]
fn partition_strategy_never_changes_the_report() {
    let balanced = Fleet::new(adversarial_config(25).with_threads(4)).run();
    let contiguous = Fleet::new(
        adversarial_config(25)
            .with_threads(4)
            .with_partition(Partition::Contiguous),
    )
    .run();
    assert_reports_equal(&balanced, &contiguous, "load-balanced vs contiguous");
    // And against the mixed (no-swarm) campaign too, where the per-poll
    // cost skew between flooded and healthy vehicles is largest.
    let mixed_balanced = Fleet::new(mixed_config(25).with_threads(8)).run();
    let mixed_contiguous = Fleet::new(
        mixed_config(25)
            .with_threads(8)
            .with_partition(Partition::Contiguous),
    )
    .run();
    assert_reports_equal(&mixed_balanced, &mixed_contiguous, "mixed campaign");
}

/// The N = 1 equivalence pin holds on the *parallel* executor too: even
/// threaded, an N = 1 fleet reproduces the golden single-vehicle
/// Figure 4 CSV byte-for-byte.
#[test]
fn parallel_n1_fleet_still_reproduces_fig4_golden() {
    let path = format!("{}/../../tests/golden/fig4.csv", env!("CARGO_MANIFEST_DIR"));
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let report = Fleet::new(FleetConfig::new(ScenarioConfig::fig4(), 1).with_threads(8)).run();
    let produced = report.outcomes[0].result.telemetry.to_csv();
    assert!(
        produced == expected,
        "fig4: parallel N=1 fleet CSV diverged from the golden file"
    );
    assert!(report.outcomes[0].gcs.packets > 0, "GCS heard the vehicle");
}

/// The quantum-stepped public API ([`Fleet::step`]) and the batch
/// executor behind [`Fleet::run`] are two schedules of the same
/// computation; their reports must match byte-for-byte.
#[test]
fn quantum_stepping_matches_the_batch_executor() {
    let batch = Fleet::new(mixed_config(5)).run();

    let mut stepped = Fleet::new(mixed_config(5));
    while stepped.step() {}
    let stepped = stepped.finish();

    assert_eq!(batch.to_csv(), stepped.to_csv());
    assert_eq!(batch.sim_steps, stepped.sim_steps);
    assert_eq!(batch.net_packets, stepped.net_packets);
    assert_eq!(batch.duration, stepped.duration);
    for (a, b) in batch.outcomes.iter().zip(&stepped.outcomes) {
        assert_eq!(
            a.result.telemetry.to_csv(),
            b.result.telemetry.to_csv(),
            "vehicle {} telemetry diverged between schedules",
            a.index
        );
    }
}

/// Oversubscription (more threads than vehicles) must degrade to one
/// vehicle per shard, not misbehave.
#[test]
fn more_threads_than_vehicles_is_fine() {
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(2));
    let a = Fleet::new(FleetConfig::new(base.clone(), 3)).run();
    let b = Fleet::new(FleetConfig::new(base, 3).with_threads(16)).run();
    assert_eq!(a.to_csv(), b.to_csv());
}
