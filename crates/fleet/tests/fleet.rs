//! Fleet-level behaviour: determinism of mixed-attack campaigns, attack
//! placement, and the GCS's per-client telemetry accounting.

use attacks::fleet::{FleetScript, FleetTarget};
use attacks::script::AttackEvent;
use attacks::udp_flood::UdpFlood;
use cd_fleet::{Fleet, FleetConfig, GcsConfig};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::{SimDuration, SimTime};

fn short_base(secs: u64) -> ScenarioConfig {
    ScenarioConfig::healthy().with_duration(SimDuration::from_secs(secs))
}

/// The acceptance-criteria scenario: a 25-UAV mixed-attack campaign must
/// be deterministic — same seed, same fleet report, run to run.
#[test]
fn mixed_attack_25_uav_campaign_is_deterministic() {
    let script = FleetScript::new()
        .at(
            SimTime::from_secs(1),
            FleetTarget::Rolling {
                period: SimDuration::from_millis(500),
            },
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(2),
            FleetTarget::Vehicle(3),
            AttackEvent::KillComplex,
        );
    let run = || Fleet::new(FleetConfig::new(short_base(3), 25).with_script(script.clone())).run();
    let a = run();
    let b = run();
    assert_eq!(a.outcomes.len(), 25);
    assert_eq!(a.to_csv(), b.to_csv(), "fleet report diverged across runs");
    assert_eq!(a.sim_steps, b.sim_steps);
    assert_eq!(a.net_packets, b.net_packets);
    // Deep check on a sample of vehicles: full telemetry, not just the
    // report rows.
    for i in [0usize, 3, 12, 24] {
        assert_eq!(
            a.outcomes[i].result.telemetry.to_csv(),
            b.outcomes[i].result.telemetry.to_csv(),
            "vehicle {i} telemetry diverged"
        );
    }
}

#[test]
fn per_victim_attack_hits_only_its_victim() {
    let script = FleetScript::new().at(
        SimTime::from_secs(1),
        FleetTarget::Vehicle(2),
        AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
    );
    let report = Fleet::new(FleetConfig::new(short_base(3), 4).with_script(script)).run();
    for o in &report.outcomes {
        if o.index == 2 {
            assert!(o.result.flood_sent > 0, "victim saw no flood");
            assert!(
                o.result.rx_socket_stats.dropped_ratelimit > 0,
                "victim's iptables limit never engaged"
            );
        } else {
            assert_eq!(o.result.flood_sent, 0, "vehicle {} was flooded", o.index);
            assert_eq!(o.result.rx_socket_stats.dropped_ratelimit, 0);
        }
    }
}

#[test]
fn broadcast_attack_hits_every_vehicle() {
    let script = FleetScript::new().at(
        SimTime::from_secs(1),
        FleetTarget::Broadcast,
        AttackEvent::KillComplex,
    );
    let report = Fleet::new(FleetConfig::new(short_base(4), 3).with_script(script)).run();
    assert_eq!(report.switches(), 3, "every monitor must fail over");
    assert_eq!(report.crashes(), 0, "Simplex keeps the fleet alive");
}

#[test]
fn vehicles_decorrelate_by_seed() {
    let report = Fleet::new(FleetConfig::new(short_base(2), 3)).run();
    let seeds: Vec<u64> = report.outcomes.iter().map(|o| o.seed).collect();
    assert_eq!(seeds, [2019, 2020, 2021]);
    // Different wind/sensor noise → different trajectories.
    assert_ne!(
        report.outcomes[0].result.telemetry.to_csv(),
        report.outcomes[1].result.telemetry.to_csv(),
        "distinct seeds produced identical flights"
    );
}

#[test]
fn gcs_polls_every_vehicle_and_rate_limits_per_client() {
    let gcs = GcsConfig {
        poll_hz: 100.0,
        per_client_pps: 10.0,
        per_client_burst: 2.0,
        ..GcsConfig::default()
    };
    let report = Fleet::new(FleetConfig::new(short_base(2), 3).with_gcs(gcs)).run();
    for o in &report.outcomes {
        // 100 Hz offered against a 10 pps limit: a trickle arrives, the
        // bulk is dropped by this client's own bucket.
        assert!(
            o.gcs.packets > 0,
            "vehicle {} never reached the GCS",
            o.index
        );
        assert!(
            o.gcs.packets < 60,
            "vehicle {}: rate limit did not engage ({} packets)",
            o.index,
            o.gcs.packets
        );
        assert!(o.gcs.dropped_ratelimit > 100, "drops unaccounted");
        assert!(o.gcs.last_seen.is_some());
        // The GCS tracked the hover: NED z ≈ -1 m.
        assert!(
            (o.gcs.last_position[2] + 1.0).abs() < 0.5,
            "vehicle {} reported implausible altitude {:?}",
            o.index,
            o.gcs.last_position
        );
    }
}

#[test]
fn crashed_vehicle_goes_silent_but_fleet_flies_on() {
    // Memory-DoS the first vehicle only (fig4 recipe: HceDirect pilot,
    // no MemGuard, high contention) — it crashes; the other two fly on.
    // fig4's crash lands around 24 s, so the full 30 s flight is kept.
    let mut base = ScenarioConfig::fig4();
    // fig4 schedules the hog at 10 s via its own per-vehicle script; keep
    // it only on vehicle 0 by clearing the base script and re-placing it.
    let hog = base.attacks.entries()[0].clone();
    base.attacks = attacks::script::AttackScript::none();
    let script = FleetScript::new().at(hog.at, FleetTarget::Vehicle(0), hog.event);
    let report = Fleet::new(FleetConfig::new(base, 3).with_script(script)).run();
    assert!(report.outcomes[0].result.crashed(), "victim survived fig4");
    assert_eq!(report.crashes(), 1, "crash spread beyond the victim");
    let victim_last = report.outcomes[0].gcs.last_seen.expect("was heard");
    let healthy_last = report.outcomes[1].gcs.last_seen.expect("was heard");
    assert!(
        healthy_last > victim_last,
        "GCS kept hearing the healthy vehicle after the victim fell silent"
    );
    assert!(report.outcomes[0].gcs.crashed, "GCS learned of the crash");
}
