//! Fleet-level allocation regression gate — the multi-vehicle
//! counterpart of `crates/core/tests/zero_alloc.rs`.
//!
//! A counting global allocator measures one simulated second of fleet
//! steady state *under flood* and demands **zero** heap allocations per
//! quantum once the pools are warm: pooled packet buffers and the shared
//! flood payload on every bridge network, run-length-encoded flood
//! bursts in the link queues, the airspace buffer pool feeding the GCS
//! downlink, pre-sized recorders, and the reused core assignment in
//! every vehicle's scheduler. N = 1000 fleet sweeps are only affordable
//! because this property holds.
//!
//! Observability (cd-obs) is compiled into every layer these windows
//! measure, with all surfaces *detached*: trace ports are `None`
//! branches, no metrics registry is attached, no network counters are
//! wired. These gates therefore also pin that unobserved runs pay
//! nothing — attaching a sink or registry is the explicit opt-in
//! (`Fleet::attach_trace` pre-allocates the rings up front).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cd_fleet::{Fleet, FleetConfig};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::SimTime;

/// The allocation counter is process-global, so the two measurement
/// windows must never overlap: each test serializes on this lock.
static MEASUREMENT: Mutex<()> = Mutex::new(());

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to `System` with the caller's exact
// layout/pointer arguments, so `System`'s contract is upheld verbatim;
// the only addition is a relaxed atomic increment, which allocates
// nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn advance_to(fleet: &mut Fleet, target: SimTime) {
    while fleet.now() < target && fleet.step() {}
}

/// One simulated second of a 3-vehicle fleet in Figure-7 flood steady
/// state must not allocate at all. The warmup is pool-aware: it runs
/// well past the 8 s flood onset and the Simplex switches, so the link
/// queues carry their steady burst load, the GCS pools are primed by
/// dozens of poll/drain cycles, and the one-off switch/violation records
/// have been written.
#[test]
fn fleet_flood_steady_state_allocates_nothing() {
    let _window = MEASUREMENT.lock().expect("serialize measurement");
    // fig7 for every vehicle: a static timeline, so no fleet-script
    // rotation re-arms attacks (and allocates) inside the window.
    let mut fleet = Fleet::new(FleetConfig::new(ScenarioConfig::fig7(), 3));
    advance_to(&mut fleet, SimTime::from_secs(12));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(before > 0, "counter must have registered setup allocations");
    advance_to(&mut fleet, SimTime::from_secs(13)); // one simulated second
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "fleet steady-state step allocated {} times in one simulated second",
        after - before
    );

    // The window really was a flooded, GCS-polled fleet — not a silently
    // degenerate run.
    let report = fleet.finish();
    assert_eq!(report.crashes(), 0);
    assert_eq!(report.switches(), 3, "every monitor must have switched");
    for o in &report.outcomes {
        assert!(
            o.result.flood_sent > 4 * 20_000,
            "vehicle {} unflooded",
            o.index
        );
        assert!(
            o.gcs.packets > 0,
            "vehicle {} never reached the GCS",
            o.index
        );
    }
}

/// The batch/leap executor's counterpart: one simulated second of a
/// healthy fleet advanced in whole poll-boundary batches
/// ([`Fleet::run_until`], the executor behind [`Fleet::run`]) must be
/// allocation-free once warm. This covers the leap-path scratch the
/// per-quantum gate never touches: per-shard SoA physics batches, the
/// deferred-vehicle lists, and every machine's replay/demand/fair-order
/// buffers.
#[test]
fn fleet_leap_steady_state_allocates_nothing() {
    let _window = MEASUREMENT.lock().expect("serialize measurement");
    let mut fleet = Fleet::new(FleetConfig::new(ScenarioConfig::healthy(), 3));

    // Warmup on the same executor the window measures, so the shard
    // scratch (physics batch lanes, pending lists) has reached capacity.
    fleet.run_until(SimTime::from_secs(3));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(before > 0, "counter must have registered setup allocations");
    fleet.run_until(SimTime::from_secs(4)); // one simulated second
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "fleet leap steady-state batch allocated {} times in one simulated second",
        after - before
    );

    // The window really ran the leap executor over a healthy fleet.
    let report = fleet.finish();
    assert_eq!(report.crashes(), 0);
    assert!(
        report.quanta_leaped * 2 > report.sim_steps,
        "a healthy fleet batch run must leap most quanta: {} of {}",
        report.quanta_leaped,
        report.sim_steps
    );
}

/// The flooded batch-executor gate — the fleet twin of the core crate's
/// `udp_flood_leap_steady_state_allocates_nothing`. One simulated second
/// of a 3-vehicle Figure-7 flood advanced in poll-boundary batches must
/// be allocation-free: flood spans leap through the attack window in
/// closed form, the skipped emissions replay as run-length-encoded
/// bursts, and the bulk token-bucket settlement books whole runs without
/// materializing a packet. Any of those falling back to per-datagram
/// heap traffic fails here.
#[test]
fn fleet_flood_leap_steady_state_allocates_nothing() {
    let _window = MEASUREMENT.lock().expect("serialize measurement");
    let mut fleet = Fleet::new(FleetConfig::new(ScenarioConfig::fig7(), 3));

    // Pool-aware warmup on the batch executor itself, well past the 8 s
    // onset and the Simplex switches: RLE link entries, replay cursors
    // and every machine's span scratch reach steady capacity.
    fleet.run_until(SimTime::from_secs(12));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(before > 0, "counter must have registered setup allocations");
    fleet.run_until(SimTime::from_secs(13)); // one simulated flood second
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "fleet flood batch allocated {} times in one simulated second",
        after - before
    );

    // The window really was a flooded fleet riding the leap executor.
    let report = fleet.finish();
    assert_eq!(report.crashes(), 0);
    assert_eq!(report.switches(), 3, "every monitor must have switched");
    assert!(
        report.quanta_leaped * 2 > report.sim_steps,
        "a flooded fleet batch run must still leap most quanta: {} of {}",
        report.quanta_leaped,
        report.sim_steps
    );
    for o in &report.outcomes {
        assert!(
            o.result.flood_sent > 4 * 20_000,
            "vehicle {} unflooded",
            o.index
        );
    }
}
