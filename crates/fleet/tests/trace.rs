//! The trace stream's determinism guarantee: the JSONL bytes a fleet
//! run drains through [`Fleet::attach_trace`] are a pure function of the
//! configuration — thread count and shard partition must never move,
//! add, drop or reorder a single byte (under the default
//! [`TraceMask::DETERMINISTIC`] mask).

use attacks::fleet::{FleetScript, FleetTarget};
use attacks::script::AttackEvent;
use attacks::udp_flood::UdpFlood;
use cd_fleet::{Fleet, FleetConfig, Partition, SwarmConfig};
use cd_obs::{TraceMask, TraceSink};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::{SimDuration, SimTime};

/// The acceptance campaign: a rolling onboard flood, a targeted
/// controller kill, V2V swarm streams, and external attacker nodes
/// flooding an uplink and jamming a swarm port — every trace kind's
/// emitter gets exercised.
fn traced_config(n: usize) -> FleetConfig {
    let script = FleetScript::new()
        .at(
            SimTime::from_secs(1),
            FleetTarget::Rolling {
                period: SimDuration::from_millis(500),
            },
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(1),
            FleetTarget::GcsUplink(3),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_millis(1500),
            FleetTarget::SwarmJam(5),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(2),
            FleetTarget::Vehicle(3),
            AttackEvent::KillComplex,
        )
        .at(
            SimTime::from_millis(2500),
            FleetTarget::GcsUplink(3),
            AttackEvent::CeaseFire,
        );
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3));
    FleetConfig::new(base, n)
        .with_script(script)
        .with_swarm(SwarmConfig::default())
}

fn traced_run(threads: usize, mask: TraceMask) -> Vec<u8> {
    let mut fleet = Fleet::new(traced_config(25).with_threads(threads));
    let (sink, buf) = TraceSink::in_memory();
    fleet.attach_trace(sink.with_mask(mask));
    let report = fleet.run();
    assert!(report.outcomes.len() == 25);
    buf.take()
}

/// The tentpole pin: byte-identical JSONL at 1, 2 and 8 threads on the
/// 25-UAV mixed campaign.
#[test]
fn trace_stream_is_byte_identical_across_thread_counts() {
    let serial = traced_run(1, TraceMask::DETERMINISTIC);
    let text = String::from_utf8(serial.clone()).expect("JSONL is UTF-8");
    // Non-degeneracy: the campaign actually emitted every event class
    // the deterministic mask keeps.
    for kind in [
        "attack_arm",
        "attack_cease",
        "simplex_switch",
        "leap_span",
        "gcs_window",
        "swarm_window",
    ] {
        assert!(text.contains(kind), "no `{kind}` event in the trace");
    }
    assert!(
        !text.contains("shard_rebalance"),
        "deterministic mask leaked a shard_rebalance event"
    );
    for threads in [2usize, 8] {
        let parallel = traced_run(threads, TraceMask::DETERMINISTIC);
        assert!(
            serial == parallel,
            "trace stream diverged at {threads} threads"
        );
    }
}

/// Partitioning strategy is a wall-clock knob; the deterministic trace
/// must not see it.
#[test]
fn trace_stream_is_partition_independent() {
    let mut fleet = Fleet::new(
        traced_config(25)
            .with_threads(4)
            .with_partition(Partition::Contiguous),
    );
    let (sink, buf) = TraceSink::in_memory();
    fleet.attach_trace(sink);
    fleet.run();
    let contiguous = buf.take();
    let balanced = traced_run(4, TraceMask::DETERMINISTIC);
    assert!(
        contiguous == balanced,
        "trace stream diverged between partitions"
    );
}

/// `TraceMask::ALL` opts into the thread-count-dependent shard
/// rebalance events on parallel runs; they carry the shard ordinal.
#[test]
fn all_mask_adds_shard_rebalances_on_parallel_runs() {
    let bytes = traced_run(4, TraceMask::ALL);
    let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
    assert!(
        text.contains("shard_rebalance"),
        "ALL mask never saw a shard rebalance on a 4-thread run"
    );
}

/// Every line of the stream parses as the documented flat JSON object
/// (spot-checked without a JSON dependency: brace-delimited, known keys,
/// ns timestamps).
#[test]
fn trace_lines_are_wellformed_jsonl() {
    let bytes = traced_run(2, TraceMask::DETERMINISTIC);
    let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
    assert!(text.lines().count() > 100, "suspiciously sparse trace");
    for line in text.lines() {
        assert!(
            line.starts_with("{\"t_ns\":") && line.ends_with('}'),
            "{line}"
        );
        assert!(line.contains("\"ord\":"), "{line}");
        assert!(line.contains("\"kind\":\""), "{line}");
        assert!(line.contains("\"a\":") && line.contains("\"b\":"), "{line}");
    }
}
