//! Fleet-level time-leap equivalence: the event-driven executor
//! (`FleetConfig::leap`, the default) must reproduce the quantum-stepped
//! reference (`--no-leap`) **byte-for-byte** on the full adversarial
//! matrix — onboard rolling floods, V2V swarm streams under jam, and
//! external attacker nodes — at every thread count. The single-vehicle
//! counterpart lives in `tests/time_leap.rs` at the workspace root.

use attacks::fleet::{FleetScript, FleetTarget};
use attacks::script::AttackEvent;
use attacks::udp_flood::UdpFlood;
use cd_fleet::{Fleet, FleetConfig, FleetReport, SwarmConfig};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::{SimDuration, SimTime};

fn flood() -> AttackEvent {
    AttackEvent::UdpFlood(UdpFlood::against_motor_port())
}

/// The parallel-suite mixed campaign: rolling onboard floods plus a
/// targeted controller kill, no airspace attackers.
fn mixed_config(n: usize) -> FleetConfig {
    let script = FleetScript::new()
        .at(
            SimTime::from_secs(1),
            FleetTarget::Rolling {
                period: SimDuration::from_millis(500),
            },
            flood(),
        )
        .at(
            SimTime::from_secs(2),
            FleetTarget::Vehicle(3),
            AttackEvent::KillComplex,
        );
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3));
    FleetConfig::new(base, n).with_script(script)
}

/// The full adversarial airspace: V2V swarm on a ring, rolling onboard
/// flood, an external attacker node flooding vehicle 3's GCS uplink and
/// another jamming vehicle 5's swarm port.
fn adversarial_config(n: usize) -> FleetConfig {
    let script = FleetScript::new()
        .at(
            SimTime::from_secs(1),
            FleetTarget::Rolling {
                period: SimDuration::from_millis(500),
            },
            flood(),
        )
        .at(SimTime::from_secs(1), FleetTarget::GcsUplink(3), flood())
        .at(
            SimTime::from_millis(1500),
            FleetTarget::SwarmJam(5),
            flood(),
        )
        .at(
            SimTime::from_millis(2500),
            FleetTarget::GcsUplink(3),
            AttackEvent::CeaseFire,
        );
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3));
    FleetConfig::new(base, n)
        .with_script(script)
        .with_swarm(SwarmConfig::default())
}

/// Every simulated quantity must match; only the executor diagnostics
/// (`quanta_leaped`, `wall_clock`) may differ.
fn assert_leap_equivalent(leap: &FleetReport, noleap: &FleetReport, label: &str) {
    assert_eq!(
        leap.to_csv(),
        noleap.to_csv(),
        "{label}: fleet CSV diverged between executors"
    );
    assert_eq!(leap.sim_steps, noleap.sim_steps, "{label}: sim_steps");
    assert_eq!(leap.net_packets, noleap.net_packets, "{label}: net packets");
    assert_eq!(
        leap.attacker_packets, noleap.attacker_packets,
        "{label}: attacker packets"
    );
    assert_eq!(leap.duration, noleap.duration, "{label}: duration");
    for (a, b) in leap.outcomes.iter().zip(&noleap.outcomes) {
        assert_eq!(
            a.result.telemetry.to_csv(),
            b.result.telemetry.to_csv(),
            "{label}: vehicle {} telemetry diverged",
            a.index
        );
        assert_eq!(a.gcs, b.gcs, "{label}: vehicle {} GCS view", a.index);
        assert_eq!(a.swarm, b.swarm, "{label}: vehicle {} swarm view", a.index);
        assert_eq!(
            a.result.task_report, b.result.task_report,
            "{label}: vehicle {} task report",
            a.index
        );
    }
    assert_eq!(
        noleap.quanta_leaped, 0,
        "{label}: the reference executor must never leap"
    );
    assert!(
        leap.quanta_leaped > 0,
        "{label}: the campaign has idle spans the leap executor must take"
    );
    assert_eq!(
        leap.quanta_stepped() + leap.quanta_leaped,
        leap.sim_steps,
        "{label}: leap/step accounting must partition sim_steps"
    );
}

#[test]
fn mixed_campaign_leap_matches_no_leap() {
    let leap = Fleet::new(mixed_config(8)).run();
    let noleap = Fleet::new(mixed_config(8).with_leap(false)).run();
    assert_leap_equivalent(&leap, &noleap, "mixed serial");
}

#[test]
fn adversarial_campaign_leap_matches_no_leap_at_every_thread_count() {
    let noleap = Fleet::new(adversarial_config(8).with_leap(false)).run();
    // Non-degeneracy: the campaign really exercised every surface.
    assert!(noleap.attacker_packets > 0, "attacker nodes never fired");
    assert!(
        noleap.outcomes[5].swarm.dropped_jam > 0,
        "the jam never pressured vehicle 5's swarm port"
    );
    for threads in [1usize, 4] {
        let leap = Fleet::new(adversarial_config(8).with_threads(threads)).run();
        assert_leap_equivalent(&leap, &noleap, &format!("adversarial {threads}-thread"));
    }
}

/// `--no-bulk` (per-packet flood-span settlement in the virtual
/// network) must be byte-identical to the bulk default across the
/// adversarial matrix — **including** the executor stats: bulk changes
/// delivery mechanics only, never a counter or a leap decision, so
/// nothing gets stripped from this comparison (unlike the leap/no-leap
/// diff, which strips the executor-stat columns).
#[test]
fn bulk_and_per_packet_settlement_agree_byte_for_byte() {
    type ConfigFn = fn(usize) -> FleetConfig;
    let cases: [(&str, ConfigFn); 2] =
        [("mixed", mixed_config), ("adversarial", adversarial_config)];
    for (label, config) in cases {
        let bulk = Fleet::new(config(8)).run();
        let nobulk = Fleet::new(config(8).with_bulk(false)).run();
        assert_eq!(
            bulk.to_csv(),
            nobulk.to_csv(),
            "{label}: fleet CSV diverged between settlement paths"
        );
        assert_eq!(
            bulk.quanta_leaped, nobulk.quanta_leaped,
            "{label}: bulk must not change what the executor leaps"
        );
        assert_eq!(bulk.sim_steps, nobulk.sim_steps, "{label}: sim_steps");
        assert_eq!(bulk.net_packets, nobulk.net_packets, "{label}: packets");
        for (a, b) in bulk.outcomes.iter().zip(&nobulk.outcomes) {
            assert_eq!(
                a.result.telemetry.to_csv(),
                b.result.telemetry.to_csv(),
                "{label}: vehicle {} telemetry diverged",
                a.index
            );
            assert_eq!(
                a.result.rx_socket_stats, b.result.rx_socket_stats,
                "{label}: vehicle {} socket stats",
                a.index
            );
            assert_eq!(
                a.result.hce_parser_stats, b.result.hce_parser_stats,
                "{label}: vehicle {} parser stats",
                a.index
            );
        }
        assert!(
            bulk.quanta_leaped > 0,
            "{label}: degenerate case — nothing leaped, the pin is vacuous"
        );
    }
}

/// A healthy fleet's machines are mostly waiting between task events, so
/// the executor should leap well over two thirds of all quanta (measured:
/// ~73% — the stepped remainder is the genuine event quanta: ~2 200
/// completions plus ~2 200 releases per simulated second against 20 000
/// quanta, which can never be leaped).
#[test]
fn healthy_fleet_leaps_most_quanta() {
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3));
    let report = Fleet::new(FleetConfig::new(base, 4)).run();
    assert!(
        report.quanta_leaped * 3 > report.sim_steps * 2,
        "a healthy fleet should leap >2/3 of its quanta: {} of {}",
        report.quanta_leaped,
        report.sim_steps
    );
}

/// The documented `run_to_end` caveat, characterized as a regression
/// pin: when several links feed one rate-limited port (an external
/// attacker flooding the GCS uplink a radio also reports on), the batch
/// executor admits same-window packets in link order while per-quantum
/// [`Fleet::step`] admits them in arrival order, so a boundary packet
/// may book to different counters. Each schedule must be individually
/// deterministic, the leap and no-leap *batch* executors must still
/// agree byte-for-byte, and the two schedules may differ only in how
/// bucket admissions split between counters — never in totals.
#[test]
fn multi_link_rate_limited_port_schedules_are_each_pinned() {
    let config = || {
        let script =
            FleetScript::new().at(SimTime::from_secs(1), FleetTarget::GcsUplink(1), flood());
        let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3));
        FleetConfig::new(base, 3).with_script(script)
    };

    // Batch executor (leap default): deterministic, and byte-identical
    // to the no-leap batch executor even on the multi-link port.
    let batch_a = Fleet::new(config()).run();
    let batch_b = Fleet::new(config()).run();
    assert_eq!(batch_a.to_csv(), batch_b.to_csv(), "batch schedule drifted");
    let batch_noleap = Fleet::new(config().with_leap(false)).run();
    assert_leap_equivalent(&batch_a, &batch_noleap, "multi-link uplink flood");

    // Quantum-stepped schedule: deterministic in its own right.
    let stepped = |mut fleet: Fleet| {
        while fleet.step() {}
        fleet.finish()
    };
    let step_a = stepped(Fleet::new(config()));
    let step_b = stepped(Fleet::new(config()));
    assert_eq!(step_a.to_csv(), step_b.to_csv(), "stepped schedule drifted");

    // The schedules may book boundary packets differently, but only
    // between counters of the same bucket: per vehicle, the admitted
    // total (genuine + garbage) and the dropped count are conserved.
    for (a, b) in batch_a.outcomes.iter().zip(&step_a.outcomes) {
        assert_eq!(
            a.gcs.packets + a.gcs.malformed,
            b.gcs.packets + b.gcs.malformed,
            "vehicle {}: bucket admissions not conserved across schedules",
            a.index
        );
        assert_eq!(
            a.gcs.dropped_ratelimit, b.gcs.dropped_ratelimit,
            "vehicle {}: bucket drops not conserved across schedules",
            a.index
        );
        // The vehicles themselves are identical — the caveat is confined
        // to airspace-side counter booking.
        assert_eq!(
            a.result.telemetry.to_csv(),
            b.result.telemetry.to_csv(),
            "vehicle {}: flight diverged between schedules",
            a.index
        );
    }
}
