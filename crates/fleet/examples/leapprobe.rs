//! Quick throughput probe for the time-leap executor: the same healthy
//! N=50 fleet run with and without leaping. Not a test — the tracked
//! numbers live in the cd-bench matrix (`BENCH_7.json`).

use cd_fleet::{Fleet, FleetConfig};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::SimDuration;

fn main() {
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3));
    for leap in [false, true] {
        let r = Fleet::new(FleetConfig::new(base.clone(), 50).with_leap(leap)).run();
        let dt = r.wall_clock.as_secs_f64();
        println!(
            "leap={leap}: {:.2}s  steps={} leaped={} ({:.1}%)  {:.2}M steps/s",
            dt,
            r.sim_steps,
            r.quanta_leaped,
            100.0 * r.quanta_leaped as f64 / r.sim_steps as f64,
            r.sim_steps as f64 / dt / 1e6,
        );
    }
}
