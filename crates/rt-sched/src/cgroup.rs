//! Control groups: the resource-restriction mechanism the paper builds its
//! CPU protection on (§III-C).
//!
//! Two restrictions matter for ContainerDrone:
//!
//! * **cpuset** — a cgroup confines every member task to a set of cores
//!   ("Cgroup's cpuset can bind the CCE to a set of CPU cores");
//! * **no-realtime** — Docker "restricts the process's ability to raise
//!   their priority": tasks in a restricted cgroup cannot hold an RT class
//!   and are demoted to the fair class.

use crate::task::{CpuSet, SchedPolicy};

/// Identifies a cgroup within a [`crate::machine::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CgroupId(pub(crate) u32);

/// A control group.
#[derive(Debug, Clone)]
pub struct Cgroup {
    /// Display name ("/", "docker/cce", …).
    pub name: String,
    /// Cores members may run on.
    pub cpuset: CpuSet,
    /// Whether members may hold real-time scheduling classes.
    pub allow_realtime: bool,
}

impl Cgroup {
    /// The root cgroup: all cores, RT allowed.
    pub fn root() -> Cgroup {
        Cgroup {
            name: "/".to_string(),
            cpuset: CpuSet::ALL,
            allow_realtime: true,
        }
    }

    /// A restricted group as Docker creates for a container: bound to
    /// `cpuset`, RT forbidden.
    pub fn container(name: impl Into<String>, cpuset: CpuSet) -> Cgroup {
        Cgroup {
            name: name.into(),
            cpuset,
            allow_realtime: false,
        }
    }

    /// The scheduling policy a member actually gets: RT demoted to fair if
    /// the group forbids it.
    ///
    /// # Examples
    ///
    /// ```
    /// use rt_sched::cgroup::Cgroup;
    /// use rt_sched::task::{CpuSet, SchedPolicy};
    ///
    /// let cce = Cgroup::container("cce", CpuSet::single(3));
    /// let wanted = SchedPolicy::Fifo { priority: 99 };
    /// assert!(!cce.effective_policy(wanted).is_realtime());
    /// ```
    pub fn effective_policy(&self, requested: SchedPolicy) -> SchedPolicy {
        if requested.is_realtime() && !self.allow_realtime {
            SchedPolicy::Fair { weight: 1024 }
        } else {
            requested
        }
    }

    /// The cores a member with `affinity` may actually use.
    pub fn effective_affinity(&self, affinity: CpuSet) -> CpuSet {
        self.cpuset.intersect(affinity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_allows_everything() {
        let root = Cgroup::root();
        let p = SchedPolicy::Fifo { priority: 50 };
        assert_eq!(root.effective_policy(p), p);
        assert_eq!(
            root.effective_affinity(CpuSet::single(2)),
            CpuSet::single(2)
        );
    }

    #[test]
    fn container_demotes_realtime() {
        let c = Cgroup::container("cce", CpuSet::single(3));
        let p = c.effective_policy(SchedPolicy::Fifo { priority: 99 });
        assert_eq!(p, SchedPolicy::Fair { weight: 1024 });
        // Fair stays fair.
        let f = SchedPolicy::Fair { weight: 512 };
        assert_eq!(c.effective_policy(f), f);
    }

    #[test]
    fn container_cpuset_confines_affinity() {
        let c = Cgroup::container("cce", CpuSet::single(3));
        assert_eq!(c.effective_affinity(CpuSet::ALL), CpuSet::single(3));
        assert!(c.effective_affinity(CpuSet::from_cores([0, 1])).is_empty());
    }
}
