//! Fixed-priority response-time analysis (RTA).
//!
//! The paper closes with: "In the future, we plan to provide hard
//! real-time proof and schedulability analysis for container drone." This
//! module provides that analysis for the partitioned case (every task
//! pinned to one core, as the ContainerDrone HCE deployment does): the
//! classic Joseph–Pandya recurrence
//!
//! ```text
//! R_i = C_i + Σ_{j ∈ hp(i) on the same core} ⌈R_i / T_j⌉ · C_j
//! ```
//!
//! iterated to a fixed point, with an optional *memory-contention
//! inflation* step that bounds C_i under a DoS hog using the same dilation
//! model the simulator executes — so the analysis can certify the HCE
//! schedulable (or prove it overloaded) under the Figure-4/5 attack, and
//! the simulator's measured response times can be checked against the
//! bounds (see the validation tests).

use sim_core::time::SimDuration;

use crate::task::Cost;

/// One analyzable task: pinned, periodic, fixed-priority.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedTask {
    /// Display name.
    pub name: String,
    /// Core the task is pinned to.
    pub core: usize,
    /// Fixed priority (higher = more urgent), as in `SchedPolicy::Fifo`.
    pub priority: u8,
    /// Period (= implicit deadline).
    pub period: SimDuration,
    /// Cost model (the analysis uses `cpu`, `stall_fraction`).
    pub cost: Cost,
}

/// Result of the analysis for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskVerdict {
    /// Task name.
    pub name: String,
    /// The WCET used (after any contention inflation).
    pub wcet: SimDuration,
    /// Worst-case response time, if the recurrence converged within the
    /// deadline horizon.
    pub response: Option<SimDuration>,
    /// `true` if the worst-case response meets the period (deadline).
    pub schedulable: bool,
}

/// Result of the analysis for a whole task set.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Per-task verdicts, in input order.
    pub tasks: Vec<TaskVerdict>,
    /// Per-core total utilization (with inflated WCETs).
    pub core_utilization: Vec<f64>,
}

impl AnalysisReport {
    /// `true` if every task meets its deadline.
    pub fn all_schedulable(&self) -> bool {
        self.tasks.iter().all(|t| t.schedulable)
    }

    /// Looks up a task's verdict by name.
    pub fn task(&self, name: &str) -> Option<&TaskVerdict> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

/// Bounds execution-time inflation under memory contention: the dilation
/// model of [`membw`], evaluated at a worst-case other-core bus
/// utilization `u_other` (e.g. 0.93 for an unthrottled streaming hog, or
/// the MemGuard budget fraction when regulation is on).
///
/// # Examples
///
/// ```
/// use rt_sched::analysis::inflate_wcet;
/// use rt_sched::task::Cost;
/// use sim_core::time::SimDuration;
///
/// let c = Cost::memory_bound(SimDuration::from_micros(1000), 2.0e6, 0.5);
/// // γ = 14, hog at 93% of the bus: dilation 1 + 0.5·14·0.93 ≈ 7.5×.
/// let inflated = inflate_wcet(&c, 14.0, 0.93);
/// assert!(inflated > SimDuration::from_micros(7000));
/// ```
pub fn inflate_wcet(cost: &Cost, gamma: f64, u_other: f64) -> SimDuration {
    let dilation = 1.0 + cost.stall_fraction * gamma * u_other.clamp(0.0, 1.0);
    cost.cpu.mul_f64(dilation)
}

/// Runs partitioned RTA over `tasks`.
///
/// `contention`: optional `(gamma, u_other)` pair applying worst-case
/// memory-contention inflation to every WCET before the analysis.
///
/// # Panics
///
/// Panics if `n_cores` is zero or any task references a core out of range.
pub fn response_time_analysis(
    tasks: &[AnalyzedTask],
    n_cores: usize,
    contention: Option<(f64, f64)>,
) -> AnalysisReport {
    assert!(n_cores > 0, "need at least one core");
    for t in tasks {
        assert!(
            t.core < n_cores,
            "task {} on core {} out of range",
            t.name,
            t.core
        );
    }

    let wcet = |t: &AnalyzedTask| match contention {
        Some((gamma, u_other)) => inflate_wcet(&t.cost, gamma, u_other),
        None => t.cost.cpu,
    };

    let mut core_utilization = vec![0.0f64; n_cores];
    for t in tasks {
        core_utilization[t.core] += wcet(t).as_secs_f64() / t.period.as_secs_f64();
    }

    let verdicts = tasks
        .iter()
        .map(|t| {
            let c_i = wcet(t);
            // Higher-priority interference on the same core. Equal
            // priorities interfere both ways under FIFO tie-breaking, so
            // count them conservatively as higher.
            let interferers: Vec<(SimDuration, SimDuration)> = tasks
                .iter()
                .filter(|j| j.core == t.core && !std::ptr::eq(*j, t) && j.priority >= t.priority)
                .map(|j| (wcet(j), j.period))
                .collect();

            // Fixed-point iteration, bounded by the deadline (period): an
            // implicit-deadline task that cannot converge within its period
            // is unschedulable.
            let deadline = t.period;
            let mut r = c_i;
            let mut response = None;
            for _ in 0..1000 {
                let mut next = c_i;
                for (cj, tj) in &interferers {
                    let releases = r.as_nanos().div_ceil(tj.as_nanos().max(1));
                    next += *cj * releases;
                }
                if next == r {
                    response = Some(r);
                    break;
                }
                if next > deadline {
                    break; // diverged past the deadline
                }
                r = next;
            }
            let schedulable = response.is_some_and(|r| r <= deadline);
            TaskVerdict {
                name: t.name.clone(),
                wcet: c_i,
                response,
                schedulable,
            }
        })
        .collect();

    AnalysisReport {
        tasks: verdicts,
        core_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, core: usize, prio: u8, period_us: u64, wcet_us: u64) -> AnalyzedTask {
        AnalyzedTask {
            name: name.into(),
            core,
            priority: prio,
            period: SimDuration::from_micros(period_us),
            cost: Cost::compute(SimDuration::from_micros(wcet_us)),
        }
    }

    #[test]
    fn single_task_response_is_its_wcet() {
        let r = response_time_analysis(&[task("a", 0, 50, 10_000, 2_000)], 1, None);
        assert!(r.all_schedulable());
        assert_eq!(
            r.task("a").unwrap().response,
            Some(SimDuration::from_micros(2_000))
        );
        assert!((r.core_utilization[0] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn classic_liu_layland_example() {
        // Two tasks: (C=1, T=4) high, (C=2, T=6) low — schedulable;
        // R_low = 2 + ceil(R/4)·1 -> fixpoint 3 then 3... compute: start 2,
        // next = 2 + ceil(2/4)=1 -> 3; next = 2 + ceil(3/4)=1 -> 3. R=3.
        let r = response_time_analysis(
            &[
                task("hi", 0, 90, 4_000, 1_000),
                task("lo", 0, 10, 6_000, 2_000),
            ],
            1,
            None,
        );
        assert!(r.all_schedulable());
        assert_eq!(
            r.task("lo").unwrap().response,
            Some(SimDuration::from_micros(3_000))
        );
    }

    #[test]
    fn overload_is_detected() {
        let r = response_time_analysis(
            &[
                task("hi", 0, 90, 2_000, 1_500),
                task("lo", 0, 10, 4_000, 1_500),
            ],
            1,
            None,
        );
        assert!(!r.all_schedulable());
        assert!(r.task("hi").unwrap().schedulable, "high task alone is fine");
        assert!(!r.task("lo").unwrap().schedulable);
    }

    #[test]
    fn different_cores_do_not_interfere() {
        let r = response_time_analysis(
            &[
                task("a", 0, 90, 2_000, 1_500),
                task("b", 1, 10, 2_000, 1_500),
            ],
            2,
            None,
        );
        assert!(r.all_schedulable());
        assert_eq!(
            r.task("b").unwrap().response,
            Some(SimDuration::from_micros(1_500))
        );
    }

    #[test]
    fn contention_inflation_can_break_schedulability() {
        let mem_heavy = AnalyzedTask {
            name: "stack".into(),
            core: 0,
            priority: 50,
            period: SimDuration::from_micros(4_000),
            cost: Cost::memory_bound(SimDuration::from_micros(1_600), 2.8e6, 0.9),
        };
        // Healthy: 40% utilization, schedulable.
        let healthy = response_time_analysis(std::slice::from_ref(&mem_heavy), 1, None);
        assert!(healthy.all_schedulable());
        // Under an unthrottled hog (γ=45, U=0.93): WCET ≈ 38.7×, hopeless.
        let attacked =
            response_time_analysis(std::slice::from_ref(&mem_heavy), 1, Some((45.0, 0.93)));
        assert!(!attacked.all_schedulable());
        // Under MemGuard at a 2% budget the worst-case dilation (≈1.8×)
        // provably fits the period.
        let certified =
            response_time_analysis(std::slice::from_ref(&mem_heavy), 1, Some((45.0, 0.02)));
        assert!(certified.all_schedulable(), "{certified:?}");
        // At a 5% budget the *worst-case sustained* bound just misses the
        // deadline (dilation ≈3× ⇒ 4.84 ms > 4 ms) even though simulation
        // shows zero misses: MemGuard confines the hog to short bursts, so
        // the time-averaged dilation is ~1.1×. This is exactly the
        // hard-real-time-vs-observed gap the paper's future-work section
        // is about; the analysis is deliberately the conservative side.
        let conservative =
            response_time_analysis(std::slice::from_ref(&mem_heavy), 1, Some((45.0, 0.05)));
        assert!(!conservative.all_schedulable());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_core() {
        let _ = response_time_analysis(&[task("a", 3, 50, 1000, 100)], 2, None);
    }
}
