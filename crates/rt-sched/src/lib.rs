//! Multicore real-time scheduler simulation for the ContainerDrone
//! reproduction.
//!
//! Models the paper's RPi3B software platform (§IV-B/C): Linux-like
//! scheduling classes (`SCHED_FIFO`/`SCHED_RR` preempting a CFS-like fair
//! class), per-task core affinity, cgroup cpusets with the Docker
//! no-realtime restriction, sporadic servers for packet processing, and
//! per-core utilization accounting (Table II). Task execution progresses at
//! a rate governed by the shared [`membw`] memory system, which is how a
//! memory-bandwidth DoS on one core stretches execution on every core.
//!
//! # Examples
//!
//! ```
//! use rt_sched::prelude::*;
//! use sim_core::time::{SimDuration, SimTime};
//!
//! let mut m = Machine::new(MachineConfig::default());
//! // The paper's kernel drivers run at FIFO 90 (§IV-C).
//! let root = m.root_cgroup();
//! m.spawn(
//!     TaskSpec::periodic_fifo("sensor-driver", 90, SimDuration::from_hz(250.0),
//!                             Cost::compute(SimDuration::from_micros(150))),
//!     root,
//! );
//! // The container cannot obtain RT priority (§III-C).
//! let cce = m.add_cgroup(Cgroup::container("cce", CpuSet::single(3)));
//! m.spawn(TaskSpec::busy_fair("complex", Cost::compute(SimDuration::from_secs(1))), cce);
//! let mut events = Vec::new();
//! m.step_until(SimTime::from_millis(10), &mut events);
//! assert!(!events.is_empty());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod cgroup;
pub mod machine;
pub mod task;

pub use analysis::{response_time_analysis, AnalysisReport, AnalyzedTask, TaskVerdict};
pub use cgroup::{Cgroup, CgroupId};
pub use machine::{CoreStats, Machine, MachineConfig, SchedObs, TaskStats};
pub use task::{
    Activation, Cost, CpuSet, OverrunPolicy, SchedEvent, SchedPolicy, TaskId, TaskSpec,
};

/// Convenient glob import of the scheduler types.
pub mod prelude {
    pub use crate::cgroup::{Cgroup, CgroupId};
    pub use crate::machine::{CoreStats, Machine, MachineConfig, TaskStats};
    pub use crate::task::{
        Activation, Cost, CpuSet, OverrunPolicy, SchedEvent, SchedPolicy, TaskId, TaskSpec,
    };
}
