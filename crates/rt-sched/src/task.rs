//! Task model: scheduling classes, costs, activation patterns.

use sim_core::time::{SimDuration, SimTime};

/// Identifies a task within a [`crate::machine::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// A set of CPU cores, as a bitmask (like Linux `cpuset`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuSet(u64);

impl CpuSet {
    /// All cores allowed.
    pub const ALL: CpuSet = CpuSet(u64::MAX);

    /// The raw bitmask (bit `i` = core `i` allowed); lets the dispatcher
    /// pick the first free allowed core with one `trailing_zeros`.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The empty set.
    pub const NONE: CpuSet = CpuSet(0);

    /// A set containing exactly `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 64`.
    pub fn single(core: usize) -> CpuSet {
        assert!(core < 64, "core index out of range");
        CpuSet(1 << core)
    }

    /// A set from an iterator of core indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use rt_sched::task::CpuSet;
    /// let set = CpuSet::from_cores([0, 1, 2]);
    /// assert!(set.contains(1));
    /// assert!(!set.contains(3));
    /// ```
    pub fn from_cores<I: IntoIterator<Item = usize>>(cores: I) -> CpuSet {
        let mut mask = 0u64;
        for c in cores {
            assert!(c < 64, "core index out of range");
            mask |= 1 << c;
        }
        CpuSet(mask)
    }

    /// `true` if `core` is in the set.
    pub fn contains(self, core: usize) -> bool {
        core < 64 && self.0 & (1 << core) != 0
    }

    /// Set intersection.
    pub fn intersect(self, other: CpuSet) -> CpuSet {
        CpuSet(self.0 & other.0)
    }

    /// `true` if no cores are allowed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }
}

/// Scheduling class, mirroring Linux:
/// real-time FIFO/RR classes always preempt the fair (CFS-like) class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedPolicy {
    /// `SCHED_FIFO`: run until blocked; higher `priority` wins (1–99).
    Fifo {
        /// Real-time priority, 1–99 (higher = more urgent).
        priority: u8,
    },
    /// `SCHED_RR`: like FIFO but rotates among equal-priority tasks every
    /// `slice`.
    RoundRobin {
        /// Real-time priority, 1–99.
        priority: u8,
        /// Time slice before rotation.
        slice: SimDuration,
    },
    /// `SCHED_OTHER` (CFS-like): weighted fair sharing among `Fair` tasks.
    Fair {
        /// Relative weight (like a nice level; 1024 = default).
        weight: u32,
    },
}

impl SchedPolicy {
    /// Real-time priority if this is an RT class.
    pub fn rt_priority(&self) -> Option<u8> {
        match self {
            SchedPolicy::Fifo { priority } | SchedPolicy::RoundRobin { priority, .. } => {
                Some(*priority)
            }
            SchedPolicy::Fair { .. } => None,
        }
    }

    /// `true` for FIFO/RR.
    pub fn is_realtime(&self) -> bool {
        self.rt_priority().is_some()
    }
}

/// Execution cost of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Pure execution time with an uncontended memory system.
    pub cpu: SimDuration,
    /// Cache-line fetch rate while running, lines/s (drives DRAM
    /// contention).
    pub mem_bandwidth: f64,
    /// Fraction of execution that stalls on memory at baseline (the `m` of
    /// the dilation model), 0–1.
    pub stall_fraction: f64,
    /// `true` for bandwidth-bound streaming workloads (see
    /// [`membw::dram::CoreDemand::streaming`]).
    pub streaming: bool,
}

impl Cost {
    /// A compute-only cost (no meaningful memory traffic).
    pub fn compute(cpu: SimDuration) -> Cost {
        Cost {
            cpu,
            mem_bandwidth: 0.05e6,
            stall_fraction: 0.05,
            streaming: false,
        }
    }

    /// A memory-heavy cost: `stall_fraction` of execution stalls on memory.
    ///
    /// # Panics
    ///
    /// Panics if `stall_fraction` is outside `[0, 1]`.
    pub fn memory_bound(cpu: SimDuration, mem_bandwidth: f64, stall_fraction: f64) -> Cost {
        assert!(
            (0.0..=1.0).contains(&stall_fraction),
            "stall fraction out of range"
        );
        Cost {
            cpu,
            mem_bandwidth,
            stall_fraction,
            streaming: false,
        }
    }

    /// A streaming (bandwidth-bound) cost, like the IsolBench `Bandwidth`
    /// attack loop.
    ///
    /// # Panics
    ///
    /// Panics if `stall_fraction` is outside `[0, 1]`.
    pub fn streaming(cpu: SimDuration, mem_bandwidth: f64, stall_fraction: f64) -> Cost {
        assert!(
            (0.0..=1.0).contains(&stall_fraction),
            "stall fraction out of range"
        );
        Cost {
            cpu,
            mem_bandwidth,
            stall_fraction,
            streaming: true,
        }
    }
}

/// What happens when a periodic job is still running at its next release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverrunPolicy {
    /// Skip the new release (control tasks: run the freshest iteration
    /// late rather than queueing stale ones). The skip is reported.
    #[default]
    SkipRelease,
    /// Queue the release (work-conserving batch behaviour).
    Queue,
}

/// How a task's jobs arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// A new job every `period`, first at `offset`.
    Periodic {
        /// Job inter-arrival time.
        period: SimDuration,
        /// Release time of the first job.
        offset: SimDuration,
        /// Behaviour on overrun.
        overrun: OverrunPolicy,
    },
    /// Jobs injected externally via
    /// [`crate::machine::Machine::inject_job`] (e.g. one per received
    /// packet).
    Sporadic,
    /// Always runnable, never completes (CPU hogs, busy-polling threads).
    Busy,
}

/// Full description of a task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Human-readable name (appears in events and reports).
    pub name: String,
    /// Scheduling class.
    pub policy: SchedPolicy,
    /// Allowed cores (intersected with the cgroup's cpuset).
    pub affinity: CpuSet,
    /// Activation pattern.
    pub activation: Activation,
    /// Cost of one job (ignored for `Busy`, which always has work).
    pub cost: Cost,
}

impl TaskSpec {
    /// A periodic real-time FIFO task.
    pub fn periodic_fifo(
        name: impl Into<String>,
        priority: u8,
        period: SimDuration,
        cost: Cost,
    ) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            policy: SchedPolicy::Fifo { priority },
            affinity: CpuSet::ALL,
            activation: Activation::Periodic {
                period,
                offset: SimDuration::ZERO,
                overrun: OverrunPolicy::SkipRelease,
            },
            cost,
        }
    }

    /// A periodic fair-class (best-effort) task.
    pub fn periodic_fair(name: impl Into<String>, period: SimDuration, cost: Cost) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            policy: SchedPolicy::Fair { weight: 1024 },
            affinity: CpuSet::ALL,
            activation: Activation::Periodic {
                period,
                offset: SimDuration::ZERO,
                overrun: OverrunPolicy::SkipRelease,
            },
            cost,
        }
    }

    /// A sporadic server (jobs injected per event, e.g. per packet).
    pub fn sporadic_fifo(name: impl Into<String>, priority: u8, cost: Cost) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            policy: SchedPolicy::Fifo { priority },
            affinity: CpuSet::ALL,
            activation: Activation::Sporadic,
            cost,
        }
    }

    /// An always-runnable best-effort task (hogs, spinners).
    pub fn busy_fair(name: impl Into<String>, cost: Cost) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            policy: SchedPolicy::Fair { weight: 1024 },
            affinity: CpuSet::ALL,
            activation: Activation::Busy,
            cost,
        }
    }

    /// Restricts the task to `affinity`.
    pub fn with_affinity(mut self, affinity: CpuSet) -> TaskSpec {
        self.affinity = affinity;
        self
    }

    /// Offsets the first periodic release.
    ///
    /// # Panics
    ///
    /// Panics if the task is not periodic.
    pub fn with_offset(mut self, offset: SimDuration) -> TaskSpec {
        match &mut self.activation {
            Activation::Periodic { offset: o, .. } => *o = offset,
            _ => panic!("offset applies to periodic tasks only"),
        }
        self
    }

    /// Sets the overrun policy.
    ///
    /// # Panics
    ///
    /// Panics if the task is not periodic.
    pub fn with_overrun(mut self, policy: OverrunPolicy) -> TaskSpec {
        match &mut self.activation {
            Activation::Periodic { overrun, .. } => *overrun = policy,
            _ => panic!("overrun policy applies to periodic tasks only"),
        }
        self
    }
}

/// A scheduler event produced during a quantum.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedEvent {
    /// A job finished.
    JobCompleted {
        /// The task whose job finished.
        task: TaskId,
        /// When the job was released.
        release: SimTime,
        /// When it completed.
        completion: SimTime,
    },
    /// A periodic release was skipped because the previous job was still
    /// running ([`OverrunPolicy::SkipRelease`]).
    ReleaseSkipped {
        /// The task that overran.
        task: TaskId,
        /// The release instant that was skipped.
        release: SimTime,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpuset_operations() {
        let a = CpuSet::from_cores([0, 1, 2]);
        let b = CpuSet::single(3);
        assert!(a.intersect(b).is_empty());
        assert_eq!(a.count(), 3);
        assert!(CpuSet::ALL.contains(63));
        assert!(!CpuSet::NONE.contains(0));
        assert_eq!(a.intersect(CpuSet::ALL), a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cpuset_rejects_large_index() {
        let _ = CpuSet::single(64);
    }

    #[test]
    fn policy_priorities() {
        assert_eq!(SchedPolicy::Fifo { priority: 90 }.rt_priority(), Some(90));
        assert_eq!(SchedPolicy::Fair { weight: 1024 }.rt_priority(), None);
        assert!(!SchedPolicy::Fair { weight: 1 }.is_realtime());
    }

    #[test]
    fn builders_configure_activation() {
        let t = TaskSpec::periodic_fifo(
            "drv",
            90,
            SimDuration::from_millis(4),
            Cost::compute(SimDuration::from_micros(100)),
        )
        .with_offset(SimDuration::from_micros(500))
        .with_overrun(OverrunPolicy::Queue);
        match t.activation {
            Activation::Periodic {
                period,
                offset,
                overrun,
            } => {
                assert_eq!(period, SimDuration::from_millis(4));
                assert_eq!(offset, SimDuration::from_micros(500));
                assert_eq!(overrun, OverrunPolicy::Queue);
            }
            _ => panic!("expected periodic"),
        }
    }

    #[test]
    #[should_panic(expected = "periodic tasks only")]
    fn offset_on_sporadic_panics() {
        let _ = TaskSpec::sporadic_fifo("rx", 30, Cost::compute(SimDuration::from_micros(10)))
            .with_offset(SimDuration::ZERO);
    }

    #[test]
    fn cost_constructors_validate() {
        let c = Cost::memory_bound(SimDuration::from_micros(500), 2.0e6, 0.7);
        assert_eq!(c.stall_fraction, 0.7);
    }

    #[test]
    #[should_panic(expected = "stall fraction")]
    fn cost_rejects_bad_stall_fraction() {
        let _ = Cost::memory_bound(SimDuration::from_micros(500), 2.0e6, 1.5);
    }
}
