//! The multicore machine: a quantum-stepped scheduler over a shared memory
//! system.
//!
//! Models the paper's RPi3B: four cores scheduled with Linux semantics
//! (FIFO/RR real-time classes preempting a CFS-like fair class, affinity
//! masks, cgroup cpusets) over one contended DRAM bus ([`membw`]). Task
//! execution progresses at a rate set by the memory model, so a bandwidth
//! hog on one core stretches the execution time of memory-heavy tasks on
//! every core — the physical mechanism behind the paper's Figure 4.

use std::collections::VecDeque;

use membw::dram::{CoreDemand, DramConfig, FairDrive, FairLeapStop, MemGuardConfig, MemorySystem};
use sim_core::time::{SimDuration, SimTime};

use crate::cgroup::{Cgroup, CgroupId};
use crate::task::{Activation, OverrunPolicy, SchedEvent, SchedPolicy, TaskId, TaskSpec};

/// Machine-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of CPU cores (the RPi3B has 4).
    pub n_cores: usize,
    /// Scheduler quantum; preemption and accounting granularity.
    pub quantum: SimDuration,
    /// DRAM model parameters.
    pub dram: DramConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_cores: 4,
            quantum: SimDuration::from_micros(50),
            dram: DramConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    release: SimTime,
    remaining: SimDuration,
}

#[derive(Debug, Clone)]
struct Task {
    spec: TaskSpec,
    cgroup: CgroupId,
    alive: bool,
    jobs: VecDeque<Job>,
    next_release: Option<SimTime>,
    /// FIFO ordering key: tasks that became runnable earlier run first
    /// within a priority level; RR rotation bumps it.
    fifo_seq: u64,
    vruntime: f64,
    slice_used: SimDuration,
    /// `true` while the task sits in the machine's ready queues. Kept in
    /// sync at every transition (release, injection, completion, kill) so
    /// dispatch never rescans the task table.
    ready: bool,
    stats: TaskStats,
}

/// Incrementally maintained ready queues — the replacement for the old
/// per-dispatch sort over every runnable task. Dispatch order is identical
/// to the sort it replaced: real-time tasks by (priority descending, FIFO
/// sequence ascending), then fair tasks by (vruntime, id).
#[derive(Debug, Clone)]
struct ReadyQueues {
    /// RT buckets indexed by `255 - priority` (bucket order = priority
    /// descending), each kept sorted ascending by FIFO sequence number.
    rt: Vec<Vec<(u64, TaskId)>>,
    /// Occupancy bitmap over `rt`: bit `b` of word `b / 64` is set iff
    /// bucket `b` is non-empty, so dispatch skips straight to occupied
    /// priority levels instead of scanning all 256.
    occupied: [u64; 4],
    /// Runnable fair tasks, unordered; ordered by vruntime at dispatch.
    fair: Vec<TaskId>,
    /// Bumped on every structural transition (insert, remove, RR
    /// reposition). While the epoch stands still the ready set — members
    /// *and* dispatch order — is provably unchanged, which is what lets
    /// [`Machine::assign_cores`] reuse the previous quantum's assignment.
    epoch: u64,
}

impl ReadyQueues {
    fn new() -> Self {
        ReadyQueues {
            rt: vec![Vec::new(); 256],
            occupied: [0; 4],
            fair: Vec::new(),
            epoch: 0,
        }
    }

    fn insert(&mut self, policy: &SchedPolicy, fifo_seq: u64, id: TaskId) {
        self.epoch += 1;
        match policy {
            SchedPolicy::Fifo { priority } | SchedPolicy::RoundRobin { priority, .. } => {
                let b = 255 - *priority as usize;
                let bucket = &mut self.rt[b];
                let pos = bucket.partition_point(|&(seq, _)| seq < fifo_seq);
                bucket.insert(pos, (fifo_seq, id));
                self.occupied[b / 64] |= 1 << (b % 64);
            }
            SchedPolicy::Fair { .. } => self.fair.push(id),
        }
    }

    fn remove(&mut self, policy: &SchedPolicy, fifo_seq: u64, id: TaskId) {
        self.epoch += 1;
        match policy {
            SchedPolicy::Fifo { priority } | SchedPolicy::RoundRobin { priority, .. } => {
                let b = 255 - *priority as usize;
                let bucket = &mut self.rt[b];
                let pos = bucket.partition_point(|&(seq, _)| seq < fifo_seq);
                debug_assert!(
                    bucket
                        .get(pos)
                        .is_some_and(|&(s, i)| s == fifo_seq && i == id),
                    "ready-queue entry must exist on removal"
                );
                bucket.remove(pos);
                if bucket.is_empty() {
                    self.occupied[b / 64] &= !(1 << (b % 64));
                }
            }
            SchedPolicy::Fair { .. } => {
                if let Some(pos) = self.fair.iter().position(|&t| t == id) {
                    self.fair.swap_remove(pos);
                }
            }
        }
    }

    /// RR slice expiry: the task moves to the back of its priority level.
    fn reposition(&mut self, policy: &SchedPolicy, old_seq: u64, new_seq: u64, id: TaskId) {
        self.remove(policy, old_seq, id);
        self.insert(policy, new_seq, id);
    }

    /// Visits every ready RT task in dispatch order (priority descending,
    /// FIFO sequence ascending); the callback returns `false` to stop.
    fn for_each_rt(&self, mut f: impl FnMut(TaskId) -> bool) {
        for (word_idx, &word) in self.occupied.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = word_idx * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for &(_, tid) in &self.rt[b] {
                    if !f(tid) {
                        return;
                    }
                }
            }
        }
    }
}

/// Per-task execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaskStats {
    /// Jobs completed.
    pub completions: u64,
    /// Periodic releases skipped due to overrun.
    pub skips: u64,
    /// Useful execution time accumulated (excludes memory stalls).
    pub useful_time: SimDuration,
    /// Wall time occupied on a core (includes stalls and throttling).
    pub busy_time: SimDuration,
    /// Sum of response times (release → completion) over all completions.
    pub response_sum: SimDuration,
    /// Largest observed response time.
    pub response_max: SimDuration,
}

impl TaskStats {
    /// Mean response time, if any job completed.
    pub fn response_mean(&self) -> Option<SimDuration> {
        if self.completions == 0 {
            None
        } else {
            Some(self.response_sum / self.completions)
        }
    }
}

/// Per-core accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Wall time a task occupied the core.
    pub busy: SimDuration,
    /// Portion of `busy` during which MemGuard held the core stalled.
    pub throttled: SimDuration,
}

/// Deterministic executor observability counters — plain integers fed
/// only by simulation state (never by wall clock or thread identity),
/// so they are identical across runs and safe to surface in traces and
/// live metrics. Cheap enough to maintain unconditionally: a handful of
/// integer increments per quantum/leap, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedObs {
    /// Quanta executed by [`Machine::step`].
    pub stepped_quanta: u64,
    /// Quanta advanced in closed form by [`Machine::leap_to`].
    pub leaped_quanta: u64,
    /// Full dispatch placements computed (`compute_assignment` runs).
    pub dispatch_recomputes: u64,
    /// Dispatches that reused the previous placement (epoch unchanged,
    /// ≤ 1 runnable fair task).
    pub dispatch_reuses: u64,
    /// Periodic releases skipped under the overrun skip policy, summed
    /// over all tasks — the live deadline-miss counter (the per-task
    /// split stays in [`TaskStats::skips`]).
    pub deadline_skips: u64,
    /// [`Machine::leap_to`] returns that stopped at a pending release
    /// boundary.
    pub leap_stops_release: u64,
    /// Returns that stopped short at an in-span bound (imminent
    /// completion, RR slice expiry, MemGuard cap or replenish).
    pub leap_stops_event: u64,
    /// Returns where no span class applied from the current state.
    pub leap_stops_declined: u64,
    /// Returns that reached the requested target.
    pub leap_stops_target: u64,
    /// Stop reason of the most recent [`Machine::leap_to`] return:
    /// `"release"`, `"event"`, `"declined"` or `"target"` (empty before
    /// the first leap).
    pub last_leap_stop: &'static str,
}

/// The simulated multicore machine.
///
/// # Examples
///
/// ```
/// use rt_sched::machine::{Machine, MachineConfig};
/// use rt_sched::task::{Cost, TaskSpec};
/// use sim_core::time::{SimDuration, SimTime};
///
/// let mut m = Machine::new(MachineConfig::default());
/// let root = m.root_cgroup();
/// m.spawn(
///     TaskSpec::periodic_fifo("drv", 90, SimDuration::from_millis(4),
///                             Cost::compute(SimDuration::from_micros(100))),
///     root,
/// );
/// let mut events = Vec::new();
/// m.step_until(SimTime::from_millis(20), &mut events);
/// assert!(events.len() >= 4); // ~5 completions in 20 ms at 250 Hz
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    now: SimTime,
    tasks: Vec<Task>,
    cgroups: Vec<Cgroup>,
    memory: MemorySystem,
    cores: Vec<CoreStats>,
    fifo_counter: u64,
    started: SimTime,
    ready: ReadyQueues,
    /// Scratch: the per-core assignment computed each quantum.
    assignment: Vec<Option<TaskId>>,
    /// Scratch: fair tasks ordered by (quantized vruntime, id) at dispatch.
    fair_scratch: Vec<(u64, u32)>,
    /// Scratch: per-core memory demands handed to the memory system.
    demands: Vec<CoreDemand>,
    /// Scratch: per-core progress written by the replayed memory quantum
    /// on the leap path.
    progress_scratch: Vec<f64>,
    /// Scratch: the fair dispatch order captured at the start of a
    /// replayed leap span, re-checked for stability every quantum.
    fair_order: Vec<(u64, u32)>,
    /// Ready-queue epoch the current `assignment` was computed against
    /// (`None` before the first dispatch). When the epoch is unchanged —
    /// and the fair class cannot reorder (≤ 1 runnable fair task) — the
    /// assignment is reused instead of recomputed.
    last_assign_epoch: Option<u64>,
    /// Debug-only scratch for the reuse cross-check (persistent so the
    /// verification itself stays allocation-free under the zero-alloc
    /// gate).
    #[cfg(debug_assertions)]
    assign_verify: Vec<Option<TaskId>>,
    /// Cache of the RT phase of [`Machine::compute_assignment`]: the
    /// placement with only the RT buckets placed, plus the free-core
    /// mask the fair fill starts from. The RT prefix is a pure function
    /// of the RT ready order and static affinities, both pinned by the
    /// ready epoch — so while `rt_epoch` matches, a recomputation (which
    /// multi-fair dispatch runs every quantum, because vruntimes move)
    /// only re-fills the fair slots.
    rt_assignment: Vec<Option<TaskId>>,
    /// Free-core mask left after the cached RT phase.
    rt_free_mask: u64,
    /// Ready-queue epoch `rt_assignment`/`rt_free_mask` were derived
    /// against (`None` before the first full walk).
    rt_epoch: Option<u64>,
    /// Earliest pending periodic release; quanta before it skip the
    /// release scan entirely (releases are ~10× rarer than quanta).
    next_release_hint: SimTime,
    /// Indices of periodic tasks, so the release scan touches nothing
    /// else. Kills are filtered by the `alive` flag at scan time.
    periodic_tasks: Vec<u32>,
    /// Executor observability counters (quanta, dispatches, skips, leap
    /// stop reasons). Deterministic: fed only by simulation state.
    obs: SchedObs,
}

impl Machine {
    /// Creates a machine with the root cgroup.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or the quantum is zero.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.n_cores > 0, "need at least one core");
        assert!(
            config.quantum > SimDuration::ZERO,
            "quantum must be positive"
        );
        Machine {
            now: SimTime::ZERO,
            tasks: Vec::new(),
            cgroups: vec![Cgroup::root()],
            memory: MemorySystem::new(config.n_cores, config.dram),
            cores: vec![CoreStats::default(); config.n_cores],
            fifo_counter: 0,
            started: SimTime::ZERO,
            ready: ReadyQueues::new(),
            assignment: Vec::with_capacity(config.n_cores),
            last_assign_epoch: None,
            #[cfg(debug_assertions)]
            assign_verify: Vec::with_capacity(config.n_cores),
            rt_assignment: Vec::with_capacity(config.n_cores),
            rt_free_mask: 0,
            rt_epoch: None,
            fair_scratch: Vec::new(),
            demands: Vec::with_capacity(config.n_cores),
            progress_scratch: vec![0.0; config.n_cores],
            fair_order: Vec::new(),
            next_release_hint: SimTime::MAX,
            periodic_tasks: Vec::new(),
            obs: SchedObs::default(),
            config,
        }
    }

    /// Executor observability counters.
    pub fn obs(&self) -> &SchedObs {
        &self.obs
    }

    /// Current machine time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The root cgroup id.
    pub fn root_cgroup(&self) -> CgroupId {
        CgroupId(0)
    }

    /// Registers a cgroup and returns its id.
    pub fn add_cgroup(&mut self, cgroup: Cgroup) -> CgroupId {
        let id = CgroupId(self.cgroups.len() as u32);
        self.cgroups.push(cgroup);
        id
    }

    /// Looks up a cgroup.
    pub fn cgroup(&self, id: CgroupId) -> &Cgroup {
        &self.cgroups[id.0 as usize]
    }

    /// Spawns a task in `cgroup`. The cgroup's restrictions apply: RT
    /// requests are demoted in no-RT groups, affinity is intersected with
    /// the cpuset.
    pub fn spawn(&mut self, spec: TaskSpec, cgroup: CgroupId) -> TaskId {
        let g = &self.cgroups[cgroup.0 as usize];
        let mut spec = spec;
        spec.policy = g.effective_policy(spec.policy);
        spec.affinity = g.effective_affinity(spec.affinity);

        let next_release = match spec.activation {
            Activation::Periodic { offset, .. } => Some(self.now + offset),
            _ => None,
        };
        let id = TaskId(self.tasks.len() as u32);
        self.fifo_counter += 1;
        // New fair tasks adopt the max vruntime so they don't starve others.
        let vruntime = self
            .tasks
            .iter()
            .filter(|t| t.alive && matches!(t.spec.policy, SchedPolicy::Fair { .. }))
            .map(|t| t.vruntime)
            .fold(0.0, f64::max);
        // Busy tasks are always runnable; everything else becomes ready on
        // its first release/injection.
        let ready = matches!(spec.activation, Activation::Busy);
        if ready {
            self.ready.insert(&spec.policy, self.fifo_counter, id);
        }
        if let Some(release) = next_release {
            self.next_release_hint = self.next_release_hint.min(release);
            self.periodic_tasks.push(id.0);
        }
        self.tasks.push(Task {
            spec,
            cgroup,
            alive: true,
            jobs: VecDeque::new(),
            next_release,
            fifo_seq: self.fifo_counter,
            vruntime,
            slice_used: SimDuration::ZERO,
            ready,
            stats: TaskStats::default(),
        });
        id
    }

    /// Kills a task: it stops running and releasing jobs immediately.
    /// Killing an already-dead task is a no-op.
    pub fn kill(&mut self, id: TaskId) {
        if let Some(t) = self.tasks.get_mut(id.index()) {
            t.alive = false;
            t.jobs.clear();
            if t.ready {
                t.ready = false;
                self.ready.remove(&t.spec.policy, t.fifo_seq, id);
            }
        }
    }

    /// `true` if the task exists and has not been killed.
    pub fn is_alive(&self, id: TaskId) -> bool {
        self.tasks.get(id.index()).is_some_and(|t| t.alive)
    }

    /// Injects `count` jobs into a sporadic task (e.g. one per received
    /// packet). Ignored for dead or non-sporadic tasks.
    pub fn inject_job(&mut self, id: TaskId, count: usize) {
        let now = self.now;
        if let Some(t) = self.tasks.get_mut(id.index()) {
            if t.alive && matches!(t.spec.activation, Activation::Sporadic) {
                for _ in 0..count {
                    t.jobs.push_back(Job {
                        release: now,
                        remaining: t.spec.cost.cpu,
                    });
                }
                if count > 0 && !t.ready {
                    t.ready = true;
                    self.ready.insert(&t.spec.policy, t.fifo_seq, id);
                }
            }
        }
    }

    /// Number of queued (unfinished) jobs of a task.
    pub fn queued_jobs(&self, id: TaskId) -> usize {
        self.tasks.get(id.index()).map_or(0, |t| t.jobs.len())
    }

    /// Per-task statistics.
    pub fn task_stats(&self, id: TaskId) -> TaskStats {
        self.tasks
            .get(id.index())
            .map(|t| t.stats)
            .unwrap_or_default()
    }

    /// The task's display name.
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id.index()].spec.name
    }

    /// The cgroup a task was spawned into.
    pub fn task_cgroup(&self, id: TaskId) -> CgroupId {
        self.tasks[id.index()].cgroup
    }

    /// Per-core accounting since the last [`Machine::reset_accounting`].
    pub fn core_stats(&self) -> &[CoreStats] {
        &self.cores
    }

    /// Idle fraction of each core since the last accounting reset —
    /// the measurement reported in the paper's Table II.
    pub fn idle_rates(&self) -> Vec<f64> {
        let elapsed = self.now.saturating_since(self.started).as_secs_f64();
        if elapsed <= 0.0 {
            return vec![1.0; self.config.n_cores];
        }
        self.cores
            .iter()
            .map(|c| (1.0 - c.busy.as_secs_f64() / elapsed).clamp(0.0, 1.0))
            .collect()
    }

    /// Clears per-core accounting (per-task stats are kept).
    pub fn reset_accounting(&mut self) {
        self.cores = vec![CoreStats::default(); self.config.n_cores];
        self.started = self.now;
    }

    /// Access to the shared memory system (to enable MemGuard, read the
    /// performance counters, …).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.memory
    }

    /// Read access to the shared memory system.
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Enables MemGuard with the given regulation config.
    pub fn enable_memguard(&mut self, config: MemGuardConfig) {
        self.memory.enable_memguard(config);
    }

    /// Advances exactly one quantum, appending events to `events`.
    pub fn step(&mut self, events: &mut Vec<SchedEvent>) {
        let dt = self.config.quantum;
        self.obs.stepped_quanta += 1;
        self.release_due_jobs(events);

        self.assign_cores();

        // Memory system: demands of the running tasks.
        self.demands.clear();
        self.demands
            .resize(self.config.n_cores, CoreDemand::default());
        for (core, slot) in self.assignment.iter().enumerate() {
            if let Some(tid) = slot {
                let cost = &self.tasks[tid.index()].spec.cost;
                self.demands[core] = CoreDemand {
                    bandwidth: cost.mem_bandwidth,
                    stall_fraction: cost.stall_fraction,
                    streaming: cost.streaming,
                };
            }
        }
        let outcomes = self.memory.quantum(self.now, dt, &self.demands);

        let quantum_end = self.now + dt;
        for (core, slot) in self.assignment.iter().enumerate() {
            let Some(tid) = slot else { continue };
            let task = &mut self.tasks[tid.index()];
            let out = outcomes[core];

            // Useful progress this quantum (zero while throttled).
            let progress = dt.mul_f64(out.progress);

            let (used_wall, finished) = {
                let job = match task.jobs.front_mut() {
                    Some(j) => j,
                    None => {
                        debug_assert!(
                            matches!(task.spec.activation, Activation::Busy),
                            "running task without a job must be Busy"
                        );
                        // Busy tasks consume the whole quantum.
                        task.stats.useful_time += progress;
                        task.stats.busy_time += dt;
                        self.cores[core].busy += dt;
                        if out.throttled {
                            self.cores[core].throttled += dt;
                        }
                        task.vruntime += dt.as_secs_f64() * vruntime_scale(&task.spec.policy);
                        task.slice_used += dt;
                        // Round-robin rotation applies to busy tasks too.
                        rotate_rr_on_slice_expiry(
                            task,
                            &mut self.fifo_counter,
                            &mut self.ready,
                            *tid,
                        );
                        continue;
                    }
                };
                if progress >= job.remaining && out.progress > 0.0 {
                    // Completes mid-quantum; credit only the wall time used.
                    let wall =
                        dt.mul_f64(job.remaining.as_secs_f64() / progress.as_secs_f64().max(1e-12));
                    job.remaining = SimDuration::ZERO;
                    (wall, true)
                } else {
                    job.remaining -= progress;
                    (dt, false)
                }
            };

            task.stats.busy_time += used_wall;
            task.stats.useful_time += progress.min(task.spec.cost.cpu);
            self.cores[core].busy += used_wall;
            if out.throttled {
                self.cores[core].throttled += used_wall;
            }
            task.vruntime += used_wall.as_secs_f64() * vruntime_scale(&task.spec.policy);
            task.slice_used += used_wall;

            if finished {
                let job = task.jobs.pop_front().expect("finished job exists");
                task.stats.completions += 1;
                let response = quantum_end.saturating_since(job.release);
                task.stats.response_sum += response;
                task.stats.response_max = task.stats.response_max.max(response);
                task.slice_used = SimDuration::ZERO;
                events.push(SchedEvent::JobCompleted {
                    task: *tid,
                    release: job.release,
                    completion: quantum_end,
                });
                // Out of work: leave the ready queues until the next
                // release or injection.
                if task.jobs.is_empty() && task.ready {
                    task.ready = false;
                    self.ready.remove(&task.spec.policy, task.fifo_seq, *tid);
                }
            }

            // Round-robin rotation on slice expiry.
            rotate_rr_on_slice_expiry(task, &mut self.fifo_counter, &mut self.ready, *tid);
        }

        self.now = quantum_end;
    }

    /// Advances to `target`, appending events.
    pub fn step_until(&mut self, target: SimTime, events: &mut Vec<SchedEvent>) {
        while self.now + self.config.quantum <= target {
            self.step(events);
        }
    }

    /// `true` when no task is runnable: until the next periodic release
    /// (or an external injection) every quantum is pure bookkeeping.
    pub fn is_idle(&self) -> bool {
        self.ready.occupied == [0; 4] && self.ready.fair.is_empty()
    }

    /// The earliest instant at which the machine's scheduling state can
    /// change, assuming no external call (injection, kill, spawn) arrives
    /// first: the next periodic release, the earliest possible running-job
    /// completion (a lower bound — contention and throttling only push
    /// completions later), the next round-robin slice expiry, and — when
    /// some core has exhausted its MemGuard budget — the next replenish
    /// (which flips that core's throttle state). Quanta strictly before
    /// the returned time neither produce events nor alter the dispatch
    /// decision, which is what makes them leapable.
    pub fn next_interesting_time(&self) -> SimTime {
        let dt_ns = self.config.quantum.as_nanos();
        let dt = self.config.quantum;
        let mut t = self.next_release_hint;
        if let Some(nr) = self.memory.next_replenish_time() {
            if (0..self.config.n_cores).any(|i| self.memory.core_exhausted(i)) {
                t = t.min(nr);
            }
        }
        let now = self.now;
        let tasks = &self.tasks;
        let mut visit = |tid: TaskId| {
            let task = &tasks[tid.index()];
            if let Some(job) = task.jobs.front() {
                // Progress per quantum never exceeds the quantum itself.
                let j = job.remaining.as_nanos().div_ceil(dt_ns).max(1);
                t = t.min(now + dt * j);
            }
            if let SchedPolicy::RoundRobin { slice, .. } = task.spec.policy {
                let rem = slice.saturating_sub(task.slice_used);
                let j = rem.as_nanos().div_ceil(dt_ns).max(1);
                t = t.min(now + dt * j);
            }
        };
        self.ready.for_each_rt(|tid| {
            visit(tid);
            true
        });
        for &id in &self.ready.fair {
            visit(id);
        }
        t.max(self.now)
    }

    /// Number of whole quanta starting strictly before `t`, from `now`.
    fn quanta_before(&self, t: SimTime) -> u64 {
        if t <= self.now {
            0
        } else {
            (t - self.now)
                .as_nanos()
                .div_ceil(self.config.quantum.as_nanos())
        }
    }

    /// Advances toward `target` by leaping provably inert quantum spans in
    /// closed form instead of stepping them one by one. Returns the number
    /// of quanta leaped; `now` advances by exactly that many quanta.
    ///
    /// Leaped quanta are bit-identical to stepped ones and produce no
    /// events; the caller steps normally from wherever the leap stops (a
    /// release boundary, a completion, an RR expiry, a replenish under an
    /// exhausted budget, or a span no leap form covers). Three span
    /// classes are leaped:
    ///
    /// - **Idle**: no task is runnable. Quanta before the next release do
    ///   nothing but advance time and tick the memory regulator, which
    ///   [`MemorySystem::leap_idle`] replays exactly.
    /// - **Uncontended running spans** (closed form): the previous
    ///   assignment is provably reusable (unchanged ready epoch, ≤ 1
    ///   runnable fair task) and at most one assigned core carries live,
    ///   latency-bound memory demand — every other core is compute-only
    ///   (progress exactly one quantum) or throttled (progress exactly
    ///   zero). Per-quantum task arithmetic is a constant, so integer
    ///   counters multiply out and the fair-class `vruntime` accumulates
    ///   the identical per-quantum product in a loop (repeated f64
    ///   addition is not multiplication, so the loop is kept).
    /// - **Contended running spans** (replay): several memory-active
    ///   cores, streaming demand, or multiple runnable fair tasks. The
    ///   exact per-quantum arithmetic — the DRAM contention recurrence
    ///   via [`MemorySystem::replay_quantum`] plus the stepped task
    ///   updates — is replayed against the pinned assignment, skipping
    ///   only the dispatch machinery that is provably inert; stability
    ///   (no completion, no budget cap, unchanged fair dispatch order)
    ///   is re-checked before every replayed quantum.
    ///
    /// Spans never cross a release, a completion, an RR slice expiry, or
    /// (for throttled cores) a budget replenish.
    pub fn leap_to(&mut self, target: SimTime) -> u64 {
        let dt = self.config.quantum;
        let dt_ns = dt.as_nanos();
        let mut leaped = 0u64;
        let leaped = loop {
            let span = target.saturating_since(self.now).as_nanos() / dt_ns;
            if span == 0 {
                self.obs.leap_stops_target += 1;
                self.obs.last_leap_stop = "target";
                break leaped;
            }
            // Release bound: leapable quanta start strictly before the
            // next pending release (releases fire at quantum start).
            let k_rel = if self.next_release_hint == SimTime::MAX {
                span
            } else {
                span.min(self.quanta_before(self.next_release_hint))
            };
            if k_rel == 0 {
                self.obs.leap_stops_release += 1;
                self.obs.last_leap_stop = "release";
                break leaped;
            }

            if self.is_idle() {
                self.memory.leap_idle(self.now, dt, k_rel);
                self.now += dt * k_rel;
                leaped += k_rel;
                if k_rel < span {
                    // Stopped at the release boundary.
                    self.obs.leap_stops_release += 1;
                    self.obs.last_leap_stop = "release";
                    break leaped;
                }
                continue;
            }

            let k = self.leap_running_span(k_rel);
            if k == 0 {
                self.obs.leap_stops_declined += 1;
                self.obs.last_leap_stop = "declined";
                break leaped;
            }
            leaped += k;
            if k < k_rel {
                // An in-span bound fired; caller steps it.
                self.obs.leap_stops_event += 1;
                self.obs.last_leap_stop = "event";
                break leaped;
            }
        };
        self.obs.leaped_quanta += leaped;
        leaped
    }

    /// One attempt at a stable running-span leap of at most `max_k` quanta
    /// (see [`Machine::leap_to`]). Returns the quanta actually leaped
    /// (0 = not closed-formable from this state).
    fn leap_running_span(&mut self, max_k: u64) -> u64 {
        let multi_fair = self.ready.fair.len() > 1;
        if multi_fair || self.last_assign_epoch != Some(self.ready.epoch) {
            // Same recompute-or-reuse decision `assign_cores` makes at
            // dispatch: a stale epoch or a reorderable fair class means
            // the placement must be re-derived — the identical pure
            // function of the same inputs, so a declined leap leaves
            // exactly the state the next `step` would compute anyway.
            self.obs.dispatch_recomputes += 1;
            self.compute_assignment();
            self.last_assign_epoch = Some(self.ready.epoch);
        }
        let dt = self.config.quantum;
        let dt_ns = dt.as_nanos();
        let mut k = max_k;
        let mut traffic = 0usize;
        let mut streaming_any = false;
        let mut throttled_mask = 0u64;
        let mut single_active: Option<(usize, CoreDemand)> = None;
        for core in 0..self.assignment.len() {
            let Some(tid) = self.assignment[core] else {
                continue;
            };
            let task = &self.tasks[tid.index()];
            if self.memory.core_exhausted(core) {
                // Throttled: stable only until the replenish un-throttles
                // the core.
                let Some(nr) = self.memory.next_replenish_time() else {
                    return 0;
                };
                if nr <= self.now {
                    return 0;
                }
                k = k.min(self.quanta_before(nr));
                throttled_mask |= 1 << core;
            } else {
                let cost = &task.spec.cost;
                if cost.mem_bandwidth != 0.0 || cost.stall_fraction != 0.0 || cost.streaming {
                    traffic += 1;
                    streaming_any |= cost.streaming;
                    single_active = Some((
                        core,
                        CoreDemand {
                            bandwidth: cost.mem_bandwidth,
                            stall_fraction: cost.stall_fraction,
                            streaming: cost.streaming,
                        },
                    ));
                }
            }
            if let SchedPolicy::RoundRobin { slice, .. } = task.spec.policy {
                let rem = slice.saturating_sub(task.slice_used);
                let j_rot = rem.as_nanos().div_ceil(dt_ns);
                k = k.min(j_rot.saturating_sub(1));
            }
            if k == 0 {
                return 0;
            }
        }

        if traffic <= 1 && !streaming_any {
            let leaped = if multi_fair {
                // Several runnable fair tasks, but the steady regime
                // (one fair-hosting core, ≤ 1 demand core) still avoids
                // the full per-quantum replay.
                self.leap_fair_span(k, throttled_mask)
            } else {
                self.leap_uncontended_span(k, single_active)
            };
            if leaped > 0 {
                return leaped;
            }
            // Fall through to the replay: e.g. residual cross-core
            // contention from the previous quantum still dilates the
            // single active core, which the closed forms refuse.
        }
        self.leap_replay_span(k, multi_fair, throttled_mask)
    }

    /// The closed-form span leap for the uncontended regimes: every
    /// assigned core is compute-only, throttled, or the *single* core
    /// with live latency-bound demand (zero cross-core contention ⇒
    /// exactly full progress). Per-quantum task arithmetic is a constant,
    /// so integer counters multiply out and the memory side collapses to
    /// [`MemorySystem::leap_idle`] / [`MemorySystem::leap_one_active`].
    /// Returns the quanta leaped (0 = the closed form declined).
    fn leap_uncontended_span(&mut self, mut k: u64, active: Option<(usize, CoreDemand)>) -> u64 {
        let dt = self.config.quantum;
        let dt_ns = dt.as_nanos();
        // Progress is exactly one quantum per quantum on unthrottled
        // cores in this regime: stop before the completing quantum.
        for core in 0..self.assignment.len() {
            let Some(tid) = self.assignment[core] else {
                continue;
            };
            if self.memory.core_exhausted(core) {
                continue; // zero progress: cannot complete
            }
            if let Some(job) = self.tasks[tid.index()].jobs.front() {
                let j_comp = job.remaining.as_nanos().div_ceil(dt_ns).max(1);
                k = k.min(j_comp - 1);
            }
        }
        if k == 0 {
            return 0;
        }

        // Apply the memory side first — it can shorten the span further
        // (the active core's budget capping mid-span) — then multiply out
        // the constant per-quantum task arithmetic.
        match active {
            Some((core, demand)) => {
                k = self.memory.leap_one_active(self.now, dt, core, &demand, k);
                if k == 0 {
                    return 0;
                }
            }
            None => self.memory.leap_idle(self.now, dt, k),
        }
        for core in 0..self.assignment.len() {
            let Some(tid) = self.assignment[core] else {
                continue;
            };
            // Unchanged by the leap: exhausted cores stay exhausted (the
            // span ends before their replenish), unexhausted ones move no
            // lines.
            let throttled = self.memory.core_exhausted(core);
            let task = &mut self.tasks[tid.index()];
            let per_q_useful = if throttled {
                SimDuration::ZERO
            } else if let Some(job) = task.jobs.front_mut() {
                job.remaining -= dt * k;
                dt.min(task.spec.cost.cpu)
            } else {
                dt
            };
            task.stats.useful_time += per_q_useful * k;
            task.stats.busy_time += dt * k;
            self.cores[core].busy += dt * k;
            if throttled {
                self.cores[core].throttled += dt * k;
            }
            let scale = vruntime_scale(&task.spec.policy);
            if scale != 0.0 {
                // The stepped path adds the same product every quantum;
                // repeated addition is kept because it is not equivalent
                // to one multiplication in f64.
                let inc = dt.as_secs_f64() * scale;
                for _ in 0..k {
                    task.vruntime += inc;
                }
            }
            task.slice_used += dt * k;
        }
        self.now += dt * k;
        k
    }

    /// The span leap for the multi-fair steady state — the flood
    /// regime: several *runnable* fair tasks, but exactly one assigned
    /// core hosts a fair (vruntime-scaled) runner, at most that same
    /// core carries live latency-bound demand, and no other core has
    /// residual service from the previous quantum.
    ///
    /// In that regime every per-quantum effect the general replay
    /// computes is a constant except three f64 accumulations: the
    /// runner's `vruntime`, the active core's MemGuard budget draw, and
    /// its line counter. [`MemorySystem::leap_fair_active`] replays
    /// those three in a micro-loop (repeated f64 addition is not one
    /// multiplication) with the fair-rotation stability check folded
    /// into a single quantized-key comparison — only the runner's key
    /// moves, and only upward, so the first possible inversion of the
    /// sorted capture is against its immediate successor. Everything
    /// else — task stats, job progress, core counters — multiplies out
    /// per segment in integer nanoseconds.
    ///
    /// Fair rotations are resolved in-span without re-running the full
    /// placement. That is sound because the span pins every input the
    /// placement is a function of: the ready epoch cannot move (no
    /// release, completion, or external call mid-span), so the RT
    /// prefix and the free-core set are fixed, and the entry check
    /// proves every runnable fair task's affinity admits exactly one
    /// free core — the fair core. The fair fill then always places the
    /// head of the (quantized vruntime, id) order there and nothing
    /// else, so a rotation reduces to re-sorting one moved key in the
    /// maintained ladder (the sorted order over distinct ids is unique,
    /// so the incremental re-sort equals a fresh capture) and swapping
    /// the runner. Segment bounds that depend on the runner are then
    /// re-derived; bounds for the frozen RT cores are computed once at
    /// entry in absolute span quanta (their jobs progress exactly one
    /// quantum per quantum, so the entry bound stays exact). Returns
    /// the quanta leaped (0 = declined to the general replay).
    fn leap_fair_span(&mut self, max_k: u64, throttled_mask: u64) -> u64 {
        let dt = self.config.quantum;
        let dt_ns = dt.as_nanos();
        let mut bound = max_k;

        // --- span entry: prove the regime once. Nothing is mutated
        // --- until the first segment advances, so a decline is free.
        let mut fair_core = usize::MAX;
        let mut rid = TaskId(0);
        for core in 0..self.assignment.len() {
            let Some(tid) = self.assignment[core] else {
                continue;
            };
            let task = &self.tasks[tid.index()];
            if vruntime_scale(&task.spec.policy) != 0.0 {
                if fair_core != usize::MAX {
                    return 0; // two moving vruntime keys
                }
                fair_core = core;
                rid = tid;
                continue;
            }
            // Frozen non-fair cores: fold their completion bounds into
            // the span bound once, in absolute span quanta (exactly one
            // quantum of progress per quantum keeps them exact).
            if throttled_mask >> core & 1 == 0 {
                let cost = &task.spec.cost;
                if cost.mem_bandwidth != 0.0 || cost.stall_fraction != 0.0 || cost.streaming {
                    return 0; // demand off the fair core: replay territory
                }
                if let Some(job) = self.tasks[tid.index()].jobs.front() {
                    let j_comp = job.remaining.as_nanos().div_ceil(dt_ns).max(1);
                    bound = bound.min(j_comp - 1);
                }
            }
        }
        if fair_core == usize::MAX {
            return 0; // static keys: the general replay's case
        }
        // Every runnable fair task must be vruntime-scaled (no
        // round-robin slice bounds to track) and placeable on exactly
        // one free core — the fair core. Then the fair fill is the
        // ladder head by construction, rotations never move the fair
        // class anywhere else, and no second fair task gets a core.
        debug_assert_eq!(self.rt_epoch, Some(self.ready.epoch));
        for &id in &self.ready.fair {
            let task = &self.tasks[id.index()];
            if vruntime_scale(&task.spec.policy) == 0.0
                || task.spec.affinity.bits() & self.rt_free_mask != 1 << fair_core
            {
                return 0;
            }
        }
        if self
            .memory
            .prev_served()
            .iter()
            .enumerate()
            .any(|(i, &s)| i != fair_core && s != 0.0)
        {
            // Residual cross-core service: the contention recurrence
            // does not collapse to constants. (The fair core's own
            // residue is fine — a core never contends with itself.)
            return 0;
        }
        let runner_throttled = throttled_mask >> fair_core & 1 == 1;

        // The fair dispatch ladder, maintained across rotations.
        self.capture_fair_order();
        debug_assert!(self.fair_order.len() > 1, "multi-fair span needs a ladder");
        debug_assert_eq!(self.fair_order[0].1, rid.0, "runner must head the ladder");

        let mut leaped = 0u64;
        'segments: while leaped < bound {
            let task = &self.tasks[rid.index()];
            let cost = &task.spec.cost;
            if cost.streaming {
                break 'segments; // a streaming runner rotated in
            }
            let active = (!runner_throttled
                && (cost.mem_bandwidth != 0.0 || cost.stall_fraction != 0.0))
                .then_some((
                    fair_core,
                    CoreDemand {
                        bandwidth: cost.mem_bandwidth,
                        stall_fraction: cost.stall_fraction,
                        streaming: false,
                    },
                ));
            let inc = dt.as_secs_f64() * vruntime_scale(&task.spec.policy);
            let mut vr = task.vruntime;
            // Stop before the runner's own completing quantum (progress
            // is exactly one quantum per quantum unless throttled).
            let mut seg = bound - leaped;
            if !runner_throttled {
                if let Some(job) = task.jobs.front() {
                    let j_comp = job.remaining.as_nanos().div_ceil(dt_ns).max(1);
                    seg = seg.min(j_comp - 1);
                }
            }
            if seg == 0 {
                break 'segments;
            }
            let stop = (self.fair_order[1].0, self.fair_order[1].1, rid.0);
            let drive = FairDrive {
                acc: &mut vr,
                inc,
                stop: Some(stop),
            };
            let (k, stop_reason) = self
                .memory
                .leap_fair_active(self.now, dt, active, drive, seg);

            if k > 0 {
                // Bulk-apply the constant per-quantum task arithmetic —
                // the exact stepped updates with progress pinned at one
                // quantum (unthrottled) or zero (throttled).
                for core in 0..self.assignment.len() {
                    let Some(tid) = self.assignment[core] else {
                        continue;
                    };
                    let throttled = throttled_mask >> core & 1 == 1;
                    let task = &mut self.tasks[tid.index()];
                    task.stats.busy_time += dt * k;
                    if !throttled {
                        match task.jobs.front_mut() {
                            None => task.stats.useful_time += dt * k,
                            Some(job) => {
                                // No completion: every bound stops
                                // strictly before remaining ≤ dt.
                                job.remaining -= dt * k;
                                task.stats.useful_time += dt.min(task.spec.cost.cpu) * k;
                            }
                        }
                    }
                    task.slice_used += dt * k;
                    self.cores[core].busy += dt * k;
                    if throttled {
                        self.cores[core].throttled += dt * k;
                    }
                }
                self.tasks[rid.index()].vruntime = vr;
                self.now += dt * k;
                leaped += k;
            }
            match stop_reason {
                FairLeapStop::Rotation => {
                    // The stepped path would re-place the fair class at
                    // this quantum; under the pinned inputs that is the
                    // ladder-head swap. (A fresh capture is sorted, so
                    // a rotation always advances ≥ 1 quantum — no spin.)
                    if k == 0 {
                        break 'segments;
                    }
                    self.obs.dispatch_recomputes += 1;
                    let pair = ((vr * 1e9) as u64, rid.0);
                    let mut i = 0;
                    while i + 1 < self.fair_order.len() && self.fair_order[i + 1] < pair {
                        self.fair_order[i] = self.fair_order[i + 1];
                        i += 1;
                    }
                    self.fair_order[i] = pair;
                    rid = TaskId(self.fair_order[0].1);
                    self.assignment[fair_core] = Some(rid);
                }
                FairLeapStop::Cap | FairLeapStop::Bound => break 'segments,
            }
        }
        leaped
    }

    /// The general span leap: several cores with live memory demand,
    /// streaming tasks, multiple runnable fair tasks — regimes where
    /// per-quantum progress is state-dependent and nothing multiplies
    /// out. Each quantum is *replayed* with the exact stepped arithmetic
    /// ([`MemorySystem::replay_quantum`] plus the per-core task updates
    /// of [`Machine::step`]) while skipping the dispatch machinery that
    /// is provably inert: no release is due (caller bound), the ready
    /// set cannot transition (no completion — checked before every
    /// quantum — no RR expiry, no external call), and the placement is
    /// pinned between fair rotations (epoch unchanged; with several fair
    /// tasks their dispatch order is re-checked for stability every
    /// quantum, and on a rotation the placement is re-derived in-span by
    /// the same full recomputation the stepped path would run — multiple
    /// runnable fair tasks recompute every quantum either way, so the
    /// refreshed placement is the identical pure function of the same
    /// inputs). Stops — leaving the quantum to the stepped path — before
    /// any quantum that could complete a job or cap a MemGuard budget,
    /// and on rotations that hand a core to a round-robin task (slice
    /// bounds were derived for the entry placement).
    fn leap_replay_span(&mut self, max_k: u64, multi_fair: bool, throttled_mask: u64) -> u64 {
        let dt = self.config.quantum;
        let mut throttled_mask = throttled_mask;
        // The demand set of the current assignment — what `step`
        // rebuilds every quantum.
        self.rebuild_demands();
        if multi_fair {
            self.capture_fair_order();
        }

        let mut bound = max_k;
        let mut leaped = 0u64;
        'quanta: while leaped < bound {
            // --- stop checks: nothing may be mutated past this point if
            // --- the quantum could diverge from a replay.
            if multi_fair {
                // The placement is stable iff the captured order is still
                // sorted under the current vruntimes (only running tasks'
                // keys moved, and only upward).
                let mut prev = (0u64, 0u32);
                let mut rotated = false;
                for (n, &(_, raw)) in self.fair_order.iter().enumerate() {
                    let key = (self.tasks[TaskId(raw).index()].vruntime * 1e9) as u64;
                    if n > 0 && (key, raw) < prev {
                        rotated = true;
                        break;
                    }
                    prev = (key, raw);
                }
                if rotated {
                    // The fair class dispatches in a different order this
                    // quantum. The stepped path handles that with a full
                    // recomputation (several runnable fair tasks recompute
                    // every quantum); running the identical recomputation
                    // here keeps the span alive across the rotation. Every
                    // per-core span bound is then re-derived for the new
                    // placement; a bound that cannot be re-proven leaves
                    // the recomputed (but untouched) state to the stepped
                    // path — exactly what its own dispatch would produce.
                    self.obs.dispatch_recomputes += 1;
                    self.compute_assignment();
                    self.last_assign_epoch = Some(self.ready.epoch);
                    self.rebuild_demands();
                    throttled_mask = 0;
                    for core in 0..self.assignment.len() {
                        let Some(tid) = self.assignment[core] else {
                            continue;
                        };
                        if matches!(
                            self.tasks[tid.index()].spec.policy,
                            SchedPolicy::RoundRobin { .. }
                        ) {
                            break 'quanta;
                        }
                        if self.memory.core_exhausted(core) {
                            let Some(nr) = self.memory.next_replenish_time() else {
                                break 'quanta;
                            };
                            if nr <= self.now {
                                break 'quanta;
                            }
                            bound = bound.min(leaped + self.quanta_before(nr));
                            throttled_mask |= 1 << core;
                        }
                    }
                    if leaped >= bound {
                        break 'quanta;
                    }
                    self.capture_fair_order();
                }
            }
            for core in 0..self.assignment.len() {
                let Some(tid) = self.assignment[core] else {
                    continue;
                };
                if throttled_mask >> core & 1 == 1 {
                    continue; // zero progress: cannot complete
                }
                if let Some(job) = self.tasks[tid.index()].jobs.front() {
                    // progress ≤ dt, so remaining > dt rules a completion
                    // out without knowing the contention state.
                    if job.remaining <= dt {
                        break 'quanta;
                    }
                }
            }
            if self.memory.cap_risk(self.now, dt, &self.demands) {
                break;
            }

            // --- the quantum, replayed.
            self.memory
                .replay_quantum(self.now, dt, &self.demands, &mut self.progress_scratch);
            for core in 0..self.assignment.len() {
                let Some(tid) = self.assignment[core] else {
                    continue;
                };
                let throttled = throttled_mask >> core & 1 == 1;
                let progress = dt.mul_f64(self.progress_scratch[core]);
                let task = &mut self.tasks[tid.index()];
                match task.jobs.front_mut() {
                    None => {
                        task.stats.useful_time += progress;
                        task.stats.busy_time += dt;
                    }
                    Some(job) => {
                        // No completion: remaining > dt ≥ progress.
                        job.remaining -= progress;
                        task.stats.busy_time += dt;
                        task.stats.useful_time += progress.min(task.spec.cost.cpu);
                    }
                }
                self.cores[core].busy += dt;
                if throttled {
                    self.cores[core].throttled += dt;
                }
                task.vruntime += dt.as_secs_f64() * vruntime_scale(&task.spec.policy);
                task.slice_used += dt;
                // RR rotation cannot fire: the span is bounded strictly
                // before any slice expiry.
            }
            self.now += dt;
            leaped += 1;
        }
        leaped
    }

    /// Rebuilds the per-core [`CoreDemand`] set from the current
    /// assignment — the exact construction [`Machine::step`] performs
    /// every quantum before handing the demands to the memory system.
    fn rebuild_demands(&mut self) {
        self.demands.clear();
        self.demands
            .resize(self.config.n_cores, CoreDemand::default());
        for (core, slot) in self.assignment.iter().enumerate() {
            if let Some(tid) = slot {
                let cost = &self.tasks[tid.index()].spec.cost;
                self.demands[core] = CoreDemand {
                    bandwidth: cost.mem_bandwidth,
                    stall_fraction: cost.stall_fraction,
                    streaming: cost.streaming,
                };
            }
        }
    }

    /// Captures the fair dispatch order exactly as
    /// [`Machine::compute_assignment`] sorts it: (quantized vruntime,
    /// id). The replay span re-checks this capture for stability before
    /// every quantum.
    fn capture_fair_order(&mut self) {
        self.fair_order.clear();
        for &id in &self.ready.fair {
            let key = (self.tasks[id.index()].vruntime * 1e9) as u64;
            self.fair_order.push((key, id.0));
        }
        self.fair_order.sort_unstable();
    }

    fn release_due_jobs(&mut self, events: &mut Vec<SchedEvent>) {
        let now = self.now;
        if now < self.next_release_hint {
            return; // nothing due: quanta outnumber releases ~10:1
        }
        let mut hint = SimTime::MAX;
        let ready = &mut self.ready;
        for &idx in &self.periodic_tasks {
            let idx = idx as usize;
            let task = &mut self.tasks[idx];
            if !task.alive {
                continue;
            }
            let Activation::Periodic {
                period, overrun, ..
            } = task.spec.activation
            else {
                continue;
            };
            while let Some(release) = task.next_release {
                if release > now {
                    break;
                }
                task.next_release = Some(release + period);
                if !task.jobs.is_empty() && overrun == OverrunPolicy::SkipRelease {
                    task.stats.skips += 1;
                    self.obs.deadline_skips += 1;
                    events.push(SchedEvent::ReleaseSkipped {
                        task: TaskId(idx as u32),
                        release,
                    });
                } else {
                    task.jobs.push_back(Job {
                        release,
                        remaining: task.spec.cost.cpu,
                    });
                    if !task.ready {
                        task.ready = true;
                        ready.insert(&task.spec.policy, task.fifo_seq, TaskId(idx as u32));
                    }
                }
            }
            if let Some(release) = task.next_release {
                hint = hint.min(release);
            }
        }
        self.next_release_hint = hint;
    }

    /// Chooses which task runs on each core this quantum, reusing the
    /// previous quantum's assignment whenever it is provably unchanged.
    ///
    /// The placement is a pure function of (ready members, dispatch
    /// order, affinities, free-core scan). Affinities are fixed at spawn
    /// and every ready-set or order transition — release, injection,
    /// completion-removal, kill, RR rotation — bumps the ready-queue
    /// epoch, so an unchanged epoch pins the whole RT placement. The fair
    /// class is the one order that moves *without* a transition (vruntime
    /// advances every running quantum), so reuse additionally requires at
    /// most one runnable fair task — with a single candidate its relative
    /// order cannot matter, and it lands on the same free core as before.
    /// In the steady-state windows that dominate fleet runs (backlogged
    /// rx thread + one flooder, or pure hog load) this skips the
    /// recomputation on the vast majority of quanta.
    fn assign_cores(&mut self) {
        if self.last_assign_epoch == Some(self.ready.epoch) && self.ready.fair.len() <= 1 {
            self.obs.dispatch_reuses += 1;
            // Debug builds re-derive the placement and compare, so every
            // test run cross-checks the reuse proof on every reused
            // quantum (via persistent scratch — the check itself must not
            // allocate, or it would trip the zero-alloc gate).
            #[cfg(debug_assertions)]
            {
                let mut reused = std::mem::take(&mut self.assign_verify);
                reused.clear();
                reused.extend_from_slice(&self.assignment);
                self.compute_assignment();
                debug_assert_eq!(
                    reused, self.assignment,
                    "assignment reuse diverged from a full recomputation"
                );
                self.assign_verify = reused;
            }
            return;
        }
        self.obs.dispatch_recomputes += 1;
        self.compute_assignment();
        self.last_assign_epoch = Some(self.ready.epoch);
    }

    /// The full placement: all runnable RT tasks in (priority desc, FIFO
    /// order) first, then fair tasks by vruntime. Each task takes the
    /// first free core its affinity allows. The RT order comes straight
    /// off the incrementally maintained buckets; only the (few) runnable
    /// fair tasks are ordered at dispatch time, because vruntime moves
    /// every quantum.
    ///
    /// The RT phase is cached against the ready epoch: an epoch match
    /// means both ready classes kept their membership and RT order, so
    /// the RT prefix (and the free-core mask it leaves) is byte-for-byte
    /// what a fresh walk would produce and only the fair fill — whose
    /// vruntime keys move every quantum — runs again. Multi-fair
    /// dispatch recomputes every quantum, which makes this the hot path
    /// of fair-saturated windows (the paper's flooded container).
    fn compute_assignment(&mut self) {
        if self.rt_epoch != Some(self.ready.epoch) {
            let n_cores = self.config.n_cores;
            let tasks = &self.tasks;
            let rt_assignment = &mut self.rt_assignment;
            rt_assignment.clear();
            rt_assignment.resize(n_cores, None);
            // Bit `i` set = core `i` still free; "first free core the
            // affinity allows" is one AND + trailing_zeros.
            let mut free_mask: u64 = if n_cores >= 64 {
                u64::MAX
            } else {
                (1u64 << n_cores) - 1
            };
            self.ready.for_each_rt(|tid| {
                let allowed = tasks[tid.index()].spec.affinity.bits() & free_mask;
                if allowed != 0 {
                    let core = allowed.trailing_zeros() as usize;
                    rt_assignment[core] = Some(tid);
                    free_mask &= !(1 << core);
                }
                free_mask != 0
            });
            self.rt_free_mask = free_mask;
            self.rt_epoch = Some(self.ready.epoch);
        }

        let tasks = &self.tasks;
        let assignment = &mut self.assignment;
        assignment.clear();
        assignment.extend_from_slice(&self.rt_assignment);
        let mut free_mask = self.rt_free_mask;

        if free_mask != 0 && !self.ready.fair.is_empty() {
            self.fair_scratch.clear();
            for &id in &self.ready.fair {
                // Quantize vruntime to nanoseconds for a stable total
                // order (id breaks exact ties).
                let key = (tasks[id.index()].vruntime * 1e9) as u64;
                self.fair_scratch.push((key, id.0));
            }
            if self.fair_scratch.len() > 1 {
                self.fair_scratch.sort_unstable();
            }
            for &(_, raw) in &self.fair_scratch {
                let allowed = tasks[TaskId(raw).index()].spec.affinity.bits() & free_mask;
                if allowed != 0 {
                    let core = allowed.trailing_zeros() as usize;
                    assignment[core] = Some(TaskId(raw));
                    free_mask &= !(1 << core);
                }
                if free_mask == 0 {
                    break;
                }
            }
        }
    }
}

fn vruntime_scale(policy: &SchedPolicy) -> f64 {
    match policy {
        SchedPolicy::Fair { weight } => 1024.0 / (*weight).max(1) as f64,
        _ => 0.0,
    }
}

/// Round-robin slice expiry: reset the slice, move the task behind its
/// priority peers (new FIFO sequence number + ready-queue reposition).
/// One shared implementation for the busy-task and job-carrying branches
/// of [`Machine::step`], so the bucket bookkeeping cannot drift.
fn rotate_rr_on_slice_expiry(
    task: &mut Task,
    fifo_counter: &mut u64,
    ready: &mut ReadyQueues,
    tid: TaskId,
) {
    if let SchedPolicy::RoundRobin { slice, .. } = task.spec.policy {
        if task.slice_used >= slice {
            task.slice_used = SimDuration::ZERO;
            *fifo_counter += 1;
            let old_seq = task.fifo_seq;
            task.fifo_seq = *fifo_counter;
            if task.ready {
                ready.reposition(&task.spec.policy, old_seq, task.fifo_seq, tid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Cost, CpuSet};

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    fn count_completions(events: &[SchedEvent], id: TaskId) -> usize {
        events
            .iter()
            .filter(|e| matches!(e, SchedEvent::JobCompleted { task, .. } if *task == id))
            .count()
    }

    #[test]
    fn periodic_task_completes_every_period() {
        let mut m = machine();
        let root = m.root_cgroup();
        let id = m.spawn(
            TaskSpec::periodic_fifo(
                "drv",
                90,
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(100)),
            ),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let n = count_completions(&ev, id);
        assert!((249..=251).contains(&n), "completions {n}");
        assert_eq!(m.task_stats(id).skips, 0);
    }

    #[test]
    fn higher_priority_preempts_on_shared_core() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        // Low-priority long task + high-priority frequent task on one core.
        let low = m.spawn(
            TaskSpec::periodic_fifo(
                "low",
                10,
                SimDuration::from_millis(100),
                Cost::compute(SimDuration::from_millis(50)),
            ),
            root,
        );
        let high = m.spawn(
            TaskSpec::periodic_fifo(
                "high",
                90,
                SimDuration::from_millis(1),
                Cost::compute(SimDuration::from_micros(200)),
            ),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(100), &mut ev);
        // High-priority task must never miss: ~100 completions with tight
        // response times.
        let n_high = count_completions(&ev, high);
        assert!((99..=101).contains(&n_high), "high completions {n_high}");
        let high_stats = m.task_stats(high);
        assert!(high_stats.response_max <= SimDuration::from_micros(300));
        // The low task still makes progress in the gaps.
        assert!(m.task_stats(low).useful_time > SimDuration::from_millis(30));
    }

    #[test]
    fn affinity_confines_task() {
        let mut m = machine();
        let root = m.root_cgroup();
        let id = m.spawn(
            TaskSpec::busy_fair("hog", Cost::compute(SimDuration::from_secs(1)))
                .with_affinity(CpuSet::single(3)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(100), &mut ev);
        let stats = m.core_stats();
        assert!(stats[3].busy >= SimDuration::from_millis(99));
        for (c, stat) in stats.iter().enumerate().take(3) {
            assert_eq!(stat.busy, SimDuration::ZERO, "core {c} must stay idle");
        }
        let _ = id;
    }

    #[test]
    fn cgroup_demotes_rt_and_confines() {
        let mut m = machine();
        let cce = m.add_cgroup(Cgroup::container("cce", CpuSet::single(3)));
        // Attacker asks for FIFO 99 on all cores; gets fair on core 3 only.
        let attacker = m.spawn(
            TaskSpec {
                name: "attacker".into(),
                policy: SchedPolicy::Fifo { priority: 99 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
            cce,
        );
        let root = m.root_cgroup();
        let victim = m.spawn(
            TaskSpec::periodic_fifo(
                "safety",
                20,
                SimDuration::from_micros(2500),
                Cost::compute(SimDuration::from_micros(300)),
            )
            .with_affinity(CpuSet::single(3)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(200), &mut ev);
        // The RT victim shares core 3 but always preempts the demoted
        // attacker: no skips.
        assert_eq!(m.task_stats(victim).skips, 0);
        assert!(count_completions(&ev, victim) >= 79);
        // The attacker still runs in the gaps.
        assert!(m.task_stats(attacker).busy_time > SimDuration::from_millis(100));
    }

    #[test]
    fn fair_tasks_share_a_core_evenly() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let a = m.spawn(
            TaskSpec::busy_fair("a", Cost::compute(SimDuration::from_secs(1))),
            root,
        );
        let b = m.spawn(
            TaskSpec::busy_fair("b", Cost::compute(SimDuration::from_secs(1))),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let ta = m.task_stats(a).busy_time.as_secs_f64();
        let tb = m.task_stats(b).busy_time.as_secs_f64();
        assert!((ta - tb).abs() < 0.02, "a {ta} b {tb}");
    }

    #[test]
    fn fair_weights_bias_share() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let heavy = m.spawn(
            TaskSpec {
                name: "heavy".into(),
                policy: SchedPolicy::Fair { weight: 3072 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
            root,
        );
        let light = m.spawn(
            TaskSpec::busy_fair("light", Cost::compute(SimDuration::from_secs(1))),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(2), &mut ev);
        let th = m.task_stats(heavy).busy_time.as_secs_f64();
        let tl = m.task_stats(light).busy_time.as_secs_f64();
        assert!((th / tl - 3.0).abs() < 0.2, "ratio {}", th / tl);
    }

    #[test]
    fn overrun_skip_policy_reports_skips() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        // Demand 150% of the core: every other release must skip.
        let id = m.spawn(
            TaskSpec::periodic_fifo(
                "over",
                50,
                SimDuration::from_millis(2),
                Cost::compute(SimDuration::from_millis(3)),
            ),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let st = m.task_stats(id);
        assert!(st.skips > 100, "skips {}", st.skips);
        assert!(st.completions > 100, "completions {}", st.completions);
        // Effective rate collapses to ~333 Hz-worth of work at 500 Hz asks.
        assert!(st.completions < 400);
    }

    #[test]
    fn sporadic_jobs_run_on_injection() {
        let mut m = machine();
        let root = m.root_cgroup();
        let rx = m.spawn(
            TaskSpec::sporadic_fifo("rx", 30, Cost::compute(SimDuration::from_micros(15))),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(10), &mut ev);
        assert_eq!(count_completions(&ev, rx), 0);
        m.inject_job(rx, 100);
        assert_eq!(m.queued_jobs(rx), 100);
        m.step_until(SimTime::from_millis(20), &mut ev);
        assert_eq!(count_completions(&ev, rx), 100);
        assert_eq!(m.queued_jobs(rx), 0);
    }

    #[test]
    fn kill_stops_execution() {
        let mut m = machine();
        let root = m.root_cgroup();
        let id = m.spawn(
            TaskSpec::periodic_fifo(
                "victim",
                50,
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(100)),
            ),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(100), &mut ev);
        let before = m.task_stats(id).completions;
        assert!(before > 0);
        m.kill(id);
        assert!(!m.is_alive(id));
        m.step_until(SimTime::from_millis(200), &mut ev);
        assert_eq!(m.task_stats(id).completions, before);
    }

    #[test]
    fn round_robin_rotates_equal_priority_tasks() {
        // Two always-runnable RR tasks at the same priority on one core:
        // unlike FIFO (where the first-queued task would monopolize), the
        // slice rotation must share the core between them.
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let slice = SimDuration::from_millis(1);
        let mk = |name: &str| TaskSpec {
            name: name.into(),
            policy: SchedPolicy::RoundRobin {
                priority: 50,
                slice,
            },
            affinity: CpuSet::ALL,
            activation: Activation::Busy,
            cost: Cost::compute(SimDuration::from_secs(1)),
        };
        let a = m.spawn(mk("rr-a"), root);
        let b = m.spawn(mk("rr-b"), root);
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let ta = m.task_stats(a).busy_time.as_secs_f64();
        let tb = m.task_stats(b).busy_time.as_secs_f64();
        assert!((ta - tb).abs() < 0.01, "rr share a {ta} b {tb}");
        // A FIFO task set with the same shape starves the second task.
        let mut m2 = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root2 = m2.root_cgroup();
        let fa = m2.spawn(
            TaskSpec {
                name: "fifo-a".into(),
                policy: SchedPolicy::Fifo { priority: 50 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
            root2,
        );
        let fb = m2.spawn(
            TaskSpec {
                name: "fifo-b".into(),
                policy: SchedPolicy::Fifo { priority: 50 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
            root2,
        );
        let mut ev2 = Vec::new();
        m2.step_until(SimTime::from_secs(1), &mut ev2);
        assert!(m2.task_stats(fa).busy_time > SimDuration::from_millis(990));
        assert_eq!(m2.task_stats(fb).busy_time, SimDuration::ZERO);
    }

    #[test]
    fn steady_state_assignment_reuse_is_exact() {
        // A flood-like steady state: a deeply backlogged sporadic rx task
        // (completions leave it ready, so no epoch transitions) plus one
        // busy fair flooder — the shape that dominates fleet quanta. In
        // debug builds every reused quantum is cross-checked against the
        // full recomputation inside `assign_cores`, so this test fails if
        // the reuse proof ever misses a case this workload hits.
        let mut m = Machine::new(MachineConfig {
            n_cores: 2,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let rx = m.spawn(
            TaskSpec::sporadic_fifo("rx", 30, Cost::compute(SimDuration::from_micros(15))),
            root,
        );
        let hog = m.spawn(
            TaskSpec::busy_fair("flooder", Cost::compute(SimDuration::from_secs(1)))
                .with_affinity(CpuSet::single(1)),
            root,
        );
        m.inject_job(rx, 5000);
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        // One backlogged job completes per quantum: 5000 completions in
        // the first 250 ms, then the rx task parks and the hog keeps its
        // core — both phases reuse the assignment on nearly every quantum.
        assert_eq!(m.task_stats(rx).completions, 5000);
        assert!(m.task_stats(hog).busy_time >= SimDuration::from_millis(990));
        assert!(m.core_stats()[1].busy >= SimDuration::from_millis(990));
    }

    #[test]
    fn task_cgroup_is_recorded() {
        let mut m = machine();
        let cce = m.add_cgroup(Cgroup::container("cce", CpuSet::single(3)));
        let root = m.root_cgroup();
        let a = m.spawn(
            TaskSpec::busy_fair("in-cce", Cost::compute(SimDuration::from_secs(1))),
            cce,
        );
        let b = m.spawn(
            TaskSpec::busy_fair("in-root", Cost::compute(SimDuration::from_secs(1))),
            root,
        );
        assert_eq!(m.task_cgroup(a), cce);
        assert_eq!(m.task_cgroup(b), root);
        assert_eq!(m.cgroup(m.task_cgroup(a)).name, "cce");
    }

    #[test]
    fn idle_rates_reflect_load() {
        let mut m = machine();
        let root = m.root_cgroup();
        // 10% periodic load pinned to core 0.
        m.spawn(
            TaskSpec::periodic_fifo(
                "tick",
                40,
                SimDuration::from_millis(1),
                Cost::compute(SimDuration::from_micros(100)),
            )
            .with_affinity(CpuSet::single(0)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(2), &mut ev);
        let idle = m.idle_rates();
        assert!((idle[0] - 0.9).abs() < 0.02, "core0 idle {}", idle[0]);
        for (core, rate) in idle.iter().enumerate().skip(1) {
            assert!(*rate > 0.999, "core {core} idle {rate}");
        }
    }

    /// Drives `m` to `target` through [`Machine::leap_to`], falling back
    /// to single steps exactly as the vehicle executor does. Returns the
    /// quanta leaped.
    fn run_leaping(m: &mut Machine, target: SimTime, events: &mut Vec<SchedEvent>) -> u64 {
        let q = m.config().quantum;
        let mut leaped = 0;
        while m.now() + q <= target {
            leaped += m.leap_to(target);
            if m.now() + q <= target {
                m.step(events);
            }
        }
        leaped
    }

    /// Asserts the leaped machine is bit-identical to the stepped one:
    /// clocks, per-task stats, per-core accounting, memory counters, and
    /// the event stream, now and over a further stepped window.
    fn assert_leap_equivalent(mut m: Machine, target: SimTime, expect_leaps: bool) {
        let mut stepped = m.clone();
        let mut ev_s = Vec::new();
        stepped.step_until(target, &mut ev_s);
        let mut ev_l = Vec::new();
        let leaped = run_leaping(&mut m, target, &mut ev_l);
        if expect_leaps {
            assert!(leaped > 0, "fast path never engaged");
        }
        assert_eq!(m.now(), stepped.now());
        assert_eq!(ev_l, ev_s, "event streams diverged");
        for i in 0..m.tasks.len() {
            let id = TaskId(i as u32);
            assert_eq!(
                m.task_stats(id),
                stepped.task_stats(id),
                "stats diverged for {}",
                m.task_name(id)
            );
        }
        assert_eq!(m.core_stats(), stepped.core_stats());
        assert_eq!(m.memory().counters(), stepped.memory().counters());
        assert_eq!(
            m.memory().next_replenish_time(),
            stepped.memory().next_replenish_time()
        );
        assert_eq!(
            m.memory().throttle_events(),
            stepped.memory().throttle_events()
        );
        // The states must remain indistinguishable when stepped onward.
        let onward = target + SimDuration::from_millis(25);
        ev_s.clear();
        ev_l.clear();
        stepped.step_until(onward, &mut ev_s);
        m.step_until(onward, &mut ev_l);
        assert_eq!(ev_l, ev_s, "post-leap behavior diverged");
        assert_eq!(m.core_stats(), stepped.core_stats());
    }

    #[test]
    fn leap_matches_stepped_periodic_mix() {
        // Staggered periodic tasks: idle gaps and single-active spans
        // (even "compute" costs carry light memory noise, so these spans
        // exercise the one-active-core closed form, not just idle leaps).
        let mut m = machine();
        let root = m.root_cgroup();
        m.spawn(
            TaskSpec::periodic_fifo(
                "drv",
                90,
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(350)),
            ),
            root,
        );
        m.spawn(
            TaskSpec::periodic_fifo(
                "safety",
                20,
                SimDuration::from_millis(10),
                Cost::memory_bound(SimDuration::from_micros(320), 1.5e6, 0.55),
            )
            .with_offset(SimDuration::from_micros(1200)),
            root,
        );
        assert_leap_equivalent(m, SimTime::from_millis(200), true);
    }

    #[test]
    fn leap_matches_stepped_throttled_hog() {
        // The paper's protected-CCE shape: a fair memory hog on a budgeted
        // core alternates unthrottled spans, a cap quantum, and long
        // throttled spans — all three boundaries must land exactly.
        let mut m = machine();
        let cfg = MemGuardConfig::single_core(4, 3, 0.05, &m.config().dram);
        m.enable_memguard(cfg);
        let root = m.root_cgroup();
        m.spawn(
            TaskSpec::busy_fair(
                "pipeline",
                Cost::memory_bound(SimDuration::from_secs(1), 2.0e6, 0.6),
            )
            .with_affinity(CpuSet::single(3)),
            root,
        );
        m.spawn(
            TaskSpec::periodic_fifo(
                "drv",
                90,
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(100)),
            )
            .with_affinity(CpuSet::single(0)),
            root,
        );
        assert_leap_equivalent(m, SimTime::from_millis(150), true);
    }

    #[test]
    fn leap_matches_stepped_round_robin() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let slice = SimDuration::from_millis(1);
        for name in ["rr-a", "rr-b"] {
            m.spawn(
                TaskSpec {
                    name: name.into(),
                    policy: SchedPolicy::RoundRobin {
                        priority: 50,
                        slice,
                    },
                    affinity: CpuSet::ALL,
                    activation: Activation::Busy,
                    cost: Cost::compute(SimDuration::from_secs(1)),
                },
                root,
            );
        }
        assert_leap_equivalent(m, SimTime::from_millis(50), true);
    }

    #[test]
    fn leap_matches_stepped_with_injection() {
        // Sporadic injections between leap windows, as packet delivery
        // produces them.
        let mut m = machine();
        let root = m.root_cgroup();
        let rx = m.spawn(
            TaskSpec::sporadic_fifo("rx", 30, Cost::compute(SimDuration::from_micros(90))),
            root,
        );
        let mut stepped = m.clone();
        let mut ev_s = Vec::new();
        let mut ev_l = Vec::new();
        let mut leaped = 0;
        for window in 1..=40u64 {
            let target = SimTime::from_millis(window * 5);
            stepped.step_until(target, &mut ev_s);
            leaped += run_leaping(&mut m, target, &mut ev_l);
            if window % 3 == 0 {
                stepped.inject_job(rx, 7);
                m.inject_job(rx, 7);
            }
        }
        assert!(leaped > 0);
        assert_eq!(ev_l, ev_s);
        assert_eq!(m.task_stats(rx), stepped.task_stats(rx));
        assert_eq!(m.core_stats(), stepped.core_stats());
        assert_eq!(m.memory().counters(), stepped.memory().counters());
    }

    #[test]
    fn next_interesting_time_is_a_sound_lower_bound() {
        let mut m = machine();
        let root = m.root_cgroup();
        m.spawn(
            TaskSpec::periodic_fifo(
                "drv",
                90,
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(350)),
            ),
            root,
        );
        let mut ev = Vec::new();
        for _ in 0..2000 {
            let before = ev.len();
            let hint = m.next_interesting_time();
            m.step(&mut ev);
            if ev.len() > before {
                // An event fired in this quantum: the hint must not have
                // pointed past its end.
                assert!(
                    hint <= m.now(),
                    "hint {hint} skipped an event before {}",
                    m.now()
                );
            }
        }
        // Idle machine: the hint is exactly the next release.
        let mut idle = machine();
        let r = idle.root_cgroup();
        idle.spawn(
            TaskSpec::periodic_fifo(
                "late",
                50,
                SimDuration::from_millis(10),
                Cost::compute(SimDuration::from_micros(100)),
            )
            .with_offset(SimDuration::from_millis(7)),
            r,
        );
        assert!(idle.is_idle());
        assert_eq!(idle.next_interesting_time(), SimTime::from_millis(7));
    }

    #[test]
    fn memory_hog_slows_memory_heavy_victim_across_cores() {
        // End-to-end check of the Fig-4 mechanism inside the scheduler: a
        // busy bandwidth hog on core 3 stretches a memory-heavy periodic
        // task on core 0 past its period.
        let run = |with_hog: bool, with_memguard: bool| {
            let mut m = machine();
            if with_memguard {
                let cfg = MemGuardConfig::single_core(4, 3, 0.05, &m.config().dram);
                m.enable_memguard(cfg);
            }
            let root = m.root_cgroup();
            let victim = m.spawn(
                TaskSpec::periodic_fifo(
                    "flight-stack",
                    80,
                    SimDuration::from_millis(4),
                    Cost::memory_bound(SimDuration::from_micros(1200), 2.0e6, 0.8),
                )
                .with_affinity(CpuSet::single(0)),
                root,
            );
            if with_hog {
                m.spawn(
                    TaskSpec::busy_fair(
                        "bandwidth",
                        Cost::streaming(SimDuration::from_secs(1), 14.0e6, 0.95),
                    )
                    .with_affinity(CpuSet::single(3)),
                    root,
                );
            }
            let mut ev = Vec::new();
            m.step_until(SimTime::from_secs(1), &mut ev);
            m.task_stats(victim)
        };

        let healthy = run(false, false);
        assert_eq!(healthy.skips, 0, "no skips when healthy");

        let attacked = run(true, false);
        assert!(
            attacked.skips > 100,
            "hog must cause massive overruns, got {} skips",
            attacked.skips
        );

        let protected = run(true, true);
        assert!(
            protected.skips < 10,
            "MemGuard must prevent overruns, got {} skips",
            protected.skips
        );
    }
}
