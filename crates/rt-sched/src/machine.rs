//! The multicore machine: a quantum-stepped scheduler over a shared memory
//! system.
//!
//! Models the paper's RPi3B: four cores scheduled with Linux semantics
//! (FIFO/RR real-time classes preempting a CFS-like fair class, affinity
//! masks, cgroup cpusets) over one contended DRAM bus ([`membw`]). Task
//! execution progresses at a rate set by the memory model, so a bandwidth
//! hog on one core stretches the execution time of memory-heavy tasks on
//! every core — the physical mechanism behind the paper's Figure 4.

use std::collections::VecDeque;

use membw::dram::{CoreDemand, DramConfig, MemGuardConfig, MemorySystem};
use sim_core::time::{SimDuration, SimTime};

use crate::cgroup::{Cgroup, CgroupId};
use crate::task::{Activation, OverrunPolicy, SchedEvent, SchedPolicy, TaskId, TaskSpec};

/// Machine-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of CPU cores (the RPi3B has 4).
    pub n_cores: usize,
    /// Scheduler quantum; preemption and accounting granularity.
    pub quantum: SimDuration,
    /// DRAM model parameters.
    pub dram: DramConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_cores: 4,
            quantum: SimDuration::from_micros(50),
            dram: DramConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    release: SimTime,
    remaining: SimDuration,
}

#[derive(Debug, Clone)]
struct Task {
    spec: TaskSpec,
    cgroup: CgroupId,
    alive: bool,
    jobs: VecDeque<Job>,
    next_release: Option<SimTime>,
    /// FIFO ordering key: tasks that became runnable earlier run first
    /// within a priority level; RR rotation bumps it.
    fifo_seq: u64,
    vruntime: f64,
    slice_used: SimDuration,
    /// `true` while the task sits in the machine's ready queues. Kept in
    /// sync at every transition (release, injection, completion, kill) so
    /// dispatch never rescans the task table.
    ready: bool,
    stats: TaskStats,
}

/// Incrementally maintained ready queues — the replacement for the old
/// per-dispatch sort over every runnable task. Dispatch order is identical
/// to the sort it replaced: real-time tasks by (priority descending, FIFO
/// sequence ascending), then fair tasks by (vruntime, id).
#[derive(Debug, Clone)]
struct ReadyQueues {
    /// RT buckets indexed by `255 - priority` (bucket order = priority
    /// descending), each kept sorted ascending by FIFO sequence number.
    rt: Vec<Vec<(u64, TaskId)>>,
    /// Occupancy bitmap over `rt`: bit `b` of word `b / 64` is set iff
    /// bucket `b` is non-empty, so dispatch skips straight to occupied
    /// priority levels instead of scanning all 256.
    occupied: [u64; 4],
    /// Runnable fair tasks, unordered; ordered by vruntime at dispatch.
    fair: Vec<TaskId>,
    /// Bumped on every structural transition (insert, remove, RR
    /// reposition). While the epoch stands still the ready set — members
    /// *and* dispatch order — is provably unchanged, which is what lets
    /// [`Machine::assign_cores`] reuse the previous quantum's assignment.
    epoch: u64,
}

impl ReadyQueues {
    fn new() -> Self {
        ReadyQueues {
            rt: vec![Vec::new(); 256],
            occupied: [0; 4],
            fair: Vec::new(),
            epoch: 0,
        }
    }

    fn insert(&mut self, policy: &SchedPolicy, fifo_seq: u64, id: TaskId) {
        self.epoch += 1;
        match policy {
            SchedPolicy::Fifo { priority } | SchedPolicy::RoundRobin { priority, .. } => {
                let b = 255 - *priority as usize;
                let bucket = &mut self.rt[b];
                let pos = bucket.partition_point(|&(seq, _)| seq < fifo_seq);
                bucket.insert(pos, (fifo_seq, id));
                self.occupied[b / 64] |= 1 << (b % 64);
            }
            SchedPolicy::Fair { .. } => self.fair.push(id),
        }
    }

    fn remove(&mut self, policy: &SchedPolicy, fifo_seq: u64, id: TaskId) {
        self.epoch += 1;
        match policy {
            SchedPolicy::Fifo { priority } | SchedPolicy::RoundRobin { priority, .. } => {
                let b = 255 - *priority as usize;
                let bucket = &mut self.rt[b];
                let pos = bucket.partition_point(|&(seq, _)| seq < fifo_seq);
                debug_assert!(
                    bucket
                        .get(pos)
                        .is_some_and(|&(s, i)| s == fifo_seq && i == id),
                    "ready-queue entry must exist on removal"
                );
                bucket.remove(pos);
                if bucket.is_empty() {
                    self.occupied[b / 64] &= !(1 << (b % 64));
                }
            }
            SchedPolicy::Fair { .. } => {
                if let Some(pos) = self.fair.iter().position(|&t| t == id) {
                    self.fair.swap_remove(pos);
                }
            }
        }
    }

    /// RR slice expiry: the task moves to the back of its priority level.
    fn reposition(&mut self, policy: &SchedPolicy, old_seq: u64, new_seq: u64, id: TaskId) {
        self.remove(policy, old_seq, id);
        self.insert(policy, new_seq, id);
    }

    /// Visits every ready RT task in dispatch order (priority descending,
    /// FIFO sequence ascending); the callback returns `false` to stop.
    fn for_each_rt(&self, mut f: impl FnMut(TaskId) -> bool) {
        for (word_idx, &word) in self.occupied.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = word_idx * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for &(_, tid) in &self.rt[b] {
                    if !f(tid) {
                        return;
                    }
                }
            }
        }
    }
}

/// Per-task execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaskStats {
    /// Jobs completed.
    pub completions: u64,
    /// Periodic releases skipped due to overrun.
    pub skips: u64,
    /// Useful execution time accumulated (excludes memory stalls).
    pub useful_time: SimDuration,
    /// Wall time occupied on a core (includes stalls and throttling).
    pub busy_time: SimDuration,
    /// Sum of response times (release → completion) over all completions.
    pub response_sum: SimDuration,
    /// Largest observed response time.
    pub response_max: SimDuration,
}

impl TaskStats {
    /// Mean response time, if any job completed.
    pub fn response_mean(&self) -> Option<SimDuration> {
        if self.completions == 0 {
            None
        } else {
            Some(self.response_sum / self.completions)
        }
    }
}

/// Per-core accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Wall time a task occupied the core.
    pub busy: SimDuration,
    /// Portion of `busy` during which MemGuard held the core stalled.
    pub throttled: SimDuration,
}

/// The simulated multicore machine.
///
/// # Examples
///
/// ```
/// use rt_sched::machine::{Machine, MachineConfig};
/// use rt_sched::task::{Cost, TaskSpec};
/// use sim_core::time::{SimDuration, SimTime};
///
/// let mut m = Machine::new(MachineConfig::default());
/// let root = m.root_cgroup();
/// m.spawn(
///     TaskSpec::periodic_fifo("drv", 90, SimDuration::from_millis(4),
///                             Cost::compute(SimDuration::from_micros(100))),
///     root,
/// );
/// let mut events = Vec::new();
/// m.step_until(SimTime::from_millis(20), &mut events);
/// assert!(events.len() >= 4); // ~5 completions in 20 ms at 250 Hz
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    now: SimTime,
    tasks: Vec<Task>,
    cgroups: Vec<Cgroup>,
    memory: MemorySystem,
    cores: Vec<CoreStats>,
    fifo_counter: u64,
    started: SimTime,
    ready: ReadyQueues,
    /// Scratch: the per-core assignment computed each quantum.
    assignment: Vec<Option<TaskId>>,
    /// Scratch: fair tasks ordered by (quantized vruntime, id) at dispatch.
    fair_scratch: Vec<(u64, u32)>,
    /// Scratch: per-core memory demands handed to the memory system.
    demands: Vec<CoreDemand>,
    /// Ready-queue epoch the current `assignment` was computed against
    /// (`None` before the first dispatch). When the epoch is unchanged —
    /// and the fair class cannot reorder (≤ 1 runnable fair task) — the
    /// assignment is reused instead of recomputed.
    last_assign_epoch: Option<u64>,
    /// Debug-only scratch for the reuse cross-check (persistent so the
    /// verification itself stays allocation-free under the zero-alloc
    /// gate).
    #[cfg(debug_assertions)]
    assign_verify: Vec<Option<TaskId>>,
    /// Earliest pending periodic release; quanta before it skip the
    /// release scan entirely (releases are ~10× rarer than quanta).
    next_release_hint: SimTime,
    /// Indices of periodic tasks, so the release scan touches nothing
    /// else. Kills are filtered by the `alive` flag at scan time.
    periodic_tasks: Vec<u32>,
}

impl Machine {
    /// Creates a machine with the root cgroup.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or the quantum is zero.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.n_cores > 0, "need at least one core");
        assert!(
            config.quantum > SimDuration::ZERO,
            "quantum must be positive"
        );
        Machine {
            now: SimTime::ZERO,
            tasks: Vec::new(),
            cgroups: vec![Cgroup::root()],
            memory: MemorySystem::new(config.n_cores, config.dram),
            cores: vec![CoreStats::default(); config.n_cores],
            fifo_counter: 0,
            started: SimTime::ZERO,
            ready: ReadyQueues::new(),
            assignment: Vec::with_capacity(config.n_cores),
            last_assign_epoch: None,
            #[cfg(debug_assertions)]
            assign_verify: Vec::with_capacity(config.n_cores),
            fair_scratch: Vec::new(),
            demands: Vec::with_capacity(config.n_cores),
            next_release_hint: SimTime::MAX,
            periodic_tasks: Vec::new(),
            config,
        }
    }

    /// Current machine time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The root cgroup id.
    pub fn root_cgroup(&self) -> CgroupId {
        CgroupId(0)
    }

    /// Registers a cgroup and returns its id.
    pub fn add_cgroup(&mut self, cgroup: Cgroup) -> CgroupId {
        let id = CgroupId(self.cgroups.len() as u32);
        self.cgroups.push(cgroup);
        id
    }

    /// Looks up a cgroup.
    pub fn cgroup(&self, id: CgroupId) -> &Cgroup {
        &self.cgroups[id.0 as usize]
    }

    /// Spawns a task in `cgroup`. The cgroup's restrictions apply: RT
    /// requests are demoted in no-RT groups, affinity is intersected with
    /// the cpuset.
    pub fn spawn(&mut self, spec: TaskSpec, cgroup: CgroupId) -> TaskId {
        let g = &self.cgroups[cgroup.0 as usize];
        let mut spec = spec;
        spec.policy = g.effective_policy(spec.policy);
        spec.affinity = g.effective_affinity(spec.affinity);

        let next_release = match spec.activation {
            Activation::Periodic { offset, .. } => Some(self.now + offset),
            _ => None,
        };
        let id = TaskId(self.tasks.len() as u32);
        self.fifo_counter += 1;
        // New fair tasks adopt the max vruntime so they don't starve others.
        let vruntime = self
            .tasks
            .iter()
            .filter(|t| t.alive && matches!(t.spec.policy, SchedPolicy::Fair { .. }))
            .map(|t| t.vruntime)
            .fold(0.0, f64::max);
        // Busy tasks are always runnable; everything else becomes ready on
        // its first release/injection.
        let ready = matches!(spec.activation, Activation::Busy);
        if ready {
            self.ready.insert(&spec.policy, self.fifo_counter, id);
        }
        if let Some(release) = next_release {
            self.next_release_hint = self.next_release_hint.min(release);
            self.periodic_tasks.push(id.0);
        }
        self.tasks.push(Task {
            spec,
            cgroup,
            alive: true,
            jobs: VecDeque::new(),
            next_release,
            fifo_seq: self.fifo_counter,
            vruntime,
            slice_used: SimDuration::ZERO,
            ready,
            stats: TaskStats::default(),
        });
        id
    }

    /// Kills a task: it stops running and releasing jobs immediately.
    /// Killing an already-dead task is a no-op.
    pub fn kill(&mut self, id: TaskId) {
        if let Some(t) = self.tasks.get_mut(id.index()) {
            t.alive = false;
            t.jobs.clear();
            if t.ready {
                t.ready = false;
                self.ready.remove(&t.spec.policy, t.fifo_seq, id);
            }
        }
    }

    /// `true` if the task exists and has not been killed.
    pub fn is_alive(&self, id: TaskId) -> bool {
        self.tasks.get(id.index()).is_some_and(|t| t.alive)
    }

    /// Injects `count` jobs into a sporadic task (e.g. one per received
    /// packet). Ignored for dead or non-sporadic tasks.
    pub fn inject_job(&mut self, id: TaskId, count: usize) {
        let now = self.now;
        if let Some(t) = self.tasks.get_mut(id.index()) {
            if t.alive && matches!(t.spec.activation, Activation::Sporadic) {
                for _ in 0..count {
                    t.jobs.push_back(Job {
                        release: now,
                        remaining: t.spec.cost.cpu,
                    });
                }
                if count > 0 && !t.ready {
                    t.ready = true;
                    self.ready.insert(&t.spec.policy, t.fifo_seq, id);
                }
            }
        }
    }

    /// Number of queued (unfinished) jobs of a task.
    pub fn queued_jobs(&self, id: TaskId) -> usize {
        self.tasks.get(id.index()).map_or(0, |t| t.jobs.len())
    }

    /// Per-task statistics.
    pub fn task_stats(&self, id: TaskId) -> TaskStats {
        self.tasks
            .get(id.index())
            .map(|t| t.stats)
            .unwrap_or_default()
    }

    /// The task's display name.
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id.index()].spec.name
    }

    /// The cgroup a task was spawned into.
    pub fn task_cgroup(&self, id: TaskId) -> CgroupId {
        self.tasks[id.index()].cgroup
    }

    /// Per-core accounting since the last [`Machine::reset_accounting`].
    pub fn core_stats(&self) -> &[CoreStats] {
        &self.cores
    }

    /// Idle fraction of each core since the last accounting reset —
    /// the measurement reported in the paper's Table II.
    pub fn idle_rates(&self) -> Vec<f64> {
        let elapsed = self.now.saturating_since(self.started).as_secs_f64();
        if elapsed <= 0.0 {
            return vec![1.0; self.config.n_cores];
        }
        self.cores
            .iter()
            .map(|c| (1.0 - c.busy.as_secs_f64() / elapsed).clamp(0.0, 1.0))
            .collect()
    }

    /// Clears per-core accounting (per-task stats are kept).
    pub fn reset_accounting(&mut self) {
        self.cores = vec![CoreStats::default(); self.config.n_cores];
        self.started = self.now;
    }

    /// Access to the shared memory system (to enable MemGuard, read the
    /// performance counters, …).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.memory
    }

    /// Read access to the shared memory system.
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Enables MemGuard with the given regulation config.
    pub fn enable_memguard(&mut self, config: MemGuardConfig) {
        self.memory.enable_memguard(config);
    }

    /// Advances exactly one quantum, appending events to `events`.
    pub fn step(&mut self, events: &mut Vec<SchedEvent>) {
        let dt = self.config.quantum;
        self.release_due_jobs(events);

        self.assign_cores();

        // Memory system: demands of the running tasks.
        self.demands.clear();
        self.demands
            .resize(self.config.n_cores, CoreDemand::default());
        for (core, slot) in self.assignment.iter().enumerate() {
            if let Some(tid) = slot {
                let cost = &self.tasks[tid.index()].spec.cost;
                self.demands[core] = CoreDemand {
                    bandwidth: cost.mem_bandwidth,
                    stall_fraction: cost.stall_fraction,
                    streaming: cost.streaming,
                };
            }
        }
        let outcomes = self.memory.quantum(self.now, dt, &self.demands);

        let quantum_end = self.now + dt;
        for (core, slot) in self.assignment.iter().enumerate() {
            let Some(tid) = slot else { continue };
            let task = &mut self.tasks[tid.index()];
            let out = outcomes[core];

            // Useful progress this quantum (zero while throttled).
            let progress = dt.mul_f64(out.progress);

            let (used_wall, finished) = {
                let job = match task.jobs.front_mut() {
                    Some(j) => j,
                    None => {
                        debug_assert!(
                            matches!(task.spec.activation, Activation::Busy),
                            "running task without a job must be Busy"
                        );
                        // Busy tasks consume the whole quantum.
                        task.stats.useful_time += progress;
                        task.stats.busy_time += dt;
                        self.cores[core].busy += dt;
                        if out.throttled {
                            self.cores[core].throttled += dt;
                        }
                        task.vruntime += dt.as_secs_f64() * vruntime_scale(&task.spec.policy);
                        task.slice_used += dt;
                        // Round-robin rotation applies to busy tasks too.
                        rotate_rr_on_slice_expiry(
                            task,
                            &mut self.fifo_counter,
                            &mut self.ready,
                            *tid,
                        );
                        continue;
                    }
                };
                if progress >= job.remaining && out.progress > 0.0 {
                    // Completes mid-quantum; credit only the wall time used.
                    let wall =
                        dt.mul_f64(job.remaining.as_secs_f64() / progress.as_secs_f64().max(1e-12));
                    job.remaining = SimDuration::ZERO;
                    (wall, true)
                } else {
                    job.remaining -= progress;
                    (dt, false)
                }
            };

            task.stats.busy_time += used_wall;
            task.stats.useful_time += progress.min(task.spec.cost.cpu);
            self.cores[core].busy += used_wall;
            if out.throttled {
                self.cores[core].throttled += used_wall;
            }
            task.vruntime += used_wall.as_secs_f64() * vruntime_scale(&task.spec.policy);
            task.slice_used += used_wall;

            if finished {
                let job = task.jobs.pop_front().expect("finished job exists");
                task.stats.completions += 1;
                let response = quantum_end.saturating_since(job.release);
                task.stats.response_sum += response;
                task.stats.response_max = task.stats.response_max.max(response);
                task.slice_used = SimDuration::ZERO;
                events.push(SchedEvent::JobCompleted {
                    task: *tid,
                    release: job.release,
                    completion: quantum_end,
                });
                // Out of work: leave the ready queues until the next
                // release or injection.
                if task.jobs.is_empty() && task.ready {
                    task.ready = false;
                    self.ready.remove(&task.spec.policy, task.fifo_seq, *tid);
                }
            }

            // Round-robin rotation on slice expiry.
            rotate_rr_on_slice_expiry(task, &mut self.fifo_counter, &mut self.ready, *tid);
        }

        self.now = quantum_end;
    }

    /// Advances to `target`, appending events.
    pub fn step_until(&mut self, target: SimTime, events: &mut Vec<SchedEvent>) {
        while self.now + self.config.quantum <= target {
            self.step(events);
        }
    }

    fn release_due_jobs(&mut self, events: &mut Vec<SchedEvent>) {
        let now = self.now;
        if now < self.next_release_hint {
            return; // nothing due: quanta outnumber releases ~10:1
        }
        let mut hint = SimTime::MAX;
        let ready = &mut self.ready;
        for &idx in &self.periodic_tasks {
            let idx = idx as usize;
            let task = &mut self.tasks[idx];
            if !task.alive {
                continue;
            }
            let Activation::Periodic {
                period, overrun, ..
            } = task.spec.activation
            else {
                continue;
            };
            while let Some(release) = task.next_release {
                if release > now {
                    break;
                }
                task.next_release = Some(release + period);
                if !task.jobs.is_empty() && overrun == OverrunPolicy::SkipRelease {
                    task.stats.skips += 1;
                    events.push(SchedEvent::ReleaseSkipped {
                        task: TaskId(idx as u32),
                        release,
                    });
                } else {
                    task.jobs.push_back(Job {
                        release,
                        remaining: task.spec.cost.cpu,
                    });
                    if !task.ready {
                        task.ready = true;
                        ready.insert(&task.spec.policy, task.fifo_seq, TaskId(idx as u32));
                    }
                }
            }
            if let Some(release) = task.next_release {
                hint = hint.min(release);
            }
        }
        self.next_release_hint = hint;
    }

    /// Chooses which task runs on each core this quantum, reusing the
    /// previous quantum's assignment whenever it is provably unchanged.
    ///
    /// The placement is a pure function of (ready members, dispatch
    /// order, affinities, free-core scan). Affinities are fixed at spawn
    /// and every ready-set or order transition — release, injection,
    /// completion-removal, kill, RR rotation — bumps the ready-queue
    /// epoch, so an unchanged epoch pins the whole RT placement. The fair
    /// class is the one order that moves *without* a transition (vruntime
    /// advances every running quantum), so reuse additionally requires at
    /// most one runnable fair task — with a single candidate its relative
    /// order cannot matter, and it lands on the same free core as before.
    /// In the steady-state windows that dominate fleet runs (backlogged
    /// rx thread + one flooder, or pure hog load) this skips the
    /// recomputation on the vast majority of quanta.
    fn assign_cores(&mut self) {
        if self.last_assign_epoch == Some(self.ready.epoch) && self.ready.fair.len() <= 1 {
            // Debug builds re-derive the placement and compare, so every
            // test run cross-checks the reuse proof on every reused
            // quantum (via persistent scratch — the check itself must not
            // allocate, or it would trip the zero-alloc gate).
            #[cfg(debug_assertions)]
            {
                let mut reused = std::mem::take(&mut self.assign_verify);
                reused.clear();
                reused.extend_from_slice(&self.assignment);
                self.compute_assignment();
                debug_assert_eq!(
                    reused, self.assignment,
                    "assignment reuse diverged from a full recomputation"
                );
                self.assign_verify = reused;
            }
            return;
        }
        self.compute_assignment();
        self.last_assign_epoch = Some(self.ready.epoch);
    }

    /// The full placement: all runnable RT tasks in (priority desc, FIFO
    /// order) first, then fair tasks by vruntime. Each task takes the
    /// first free core its affinity allows. The RT order comes straight
    /// off the incrementally maintained buckets; only the (few) runnable
    /// fair tasks are ordered at dispatch time, because vruntime moves
    /// every quantum.
    fn compute_assignment(&mut self) {
        let n_cores = self.config.n_cores;
        let tasks = &self.tasks;
        let assignment = &mut self.assignment;
        assignment.clear();
        assignment.resize(n_cores, None);
        // Bit `i` set = core `i` still free; "first free core the affinity
        // allows" is one AND + trailing_zeros.
        let mut free_mask: u64 = if n_cores >= 64 {
            u64::MAX
        } else {
            (1u64 << n_cores) - 1
        };

        let mut place = |tid: TaskId, free_mask: &mut u64| {
            let allowed = tasks[tid.index()].spec.affinity.bits() & *free_mask;
            if allowed != 0 {
                let core = allowed.trailing_zeros() as usize;
                assignment[core] = Some(tid);
                *free_mask &= !(1 << core);
            }
        };

        self.ready.for_each_rt(|tid| {
            place(tid, &mut free_mask);
            free_mask != 0
        });

        if free_mask != 0 && !self.ready.fair.is_empty() {
            self.fair_scratch.clear();
            for &id in &self.ready.fair {
                // Quantize vruntime to nanoseconds for a stable total
                // order (id breaks exact ties).
                let key = (tasks[id.index()].vruntime * 1e9) as u64;
                self.fair_scratch.push((key, id.0));
            }
            if self.fair_scratch.len() > 1 {
                self.fair_scratch.sort_unstable();
            }
            for &(_, raw) in &self.fair_scratch {
                place(TaskId(raw), &mut free_mask);
                if free_mask == 0 {
                    break;
                }
            }
        }
    }
}

fn vruntime_scale(policy: &SchedPolicy) -> f64 {
    match policy {
        SchedPolicy::Fair { weight } => 1024.0 / (*weight).max(1) as f64,
        _ => 0.0,
    }
}

/// Round-robin slice expiry: reset the slice, move the task behind its
/// priority peers (new FIFO sequence number + ready-queue reposition).
/// One shared implementation for the busy-task and job-carrying branches
/// of [`Machine::step`], so the bucket bookkeeping cannot drift.
fn rotate_rr_on_slice_expiry(
    task: &mut Task,
    fifo_counter: &mut u64,
    ready: &mut ReadyQueues,
    tid: TaskId,
) {
    if let SchedPolicy::RoundRobin { slice, .. } = task.spec.policy {
        if task.slice_used >= slice {
            task.slice_used = SimDuration::ZERO;
            *fifo_counter += 1;
            let old_seq = task.fifo_seq;
            task.fifo_seq = *fifo_counter;
            if task.ready {
                ready.reposition(&task.spec.policy, old_seq, task.fifo_seq, tid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Cost, CpuSet};

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    fn count_completions(events: &[SchedEvent], id: TaskId) -> usize {
        events
            .iter()
            .filter(|e| matches!(e, SchedEvent::JobCompleted { task, .. } if *task == id))
            .count()
    }

    #[test]
    fn periodic_task_completes_every_period() {
        let mut m = machine();
        let root = m.root_cgroup();
        let id = m.spawn(
            TaskSpec::periodic_fifo(
                "drv",
                90,
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(100)),
            ),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let n = count_completions(&ev, id);
        assert!((249..=251).contains(&n), "completions {n}");
        assert_eq!(m.task_stats(id).skips, 0);
    }

    #[test]
    fn higher_priority_preempts_on_shared_core() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        // Low-priority long task + high-priority frequent task on one core.
        let low = m.spawn(
            TaskSpec::periodic_fifo(
                "low",
                10,
                SimDuration::from_millis(100),
                Cost::compute(SimDuration::from_millis(50)),
            ),
            root,
        );
        let high = m.spawn(
            TaskSpec::periodic_fifo(
                "high",
                90,
                SimDuration::from_millis(1),
                Cost::compute(SimDuration::from_micros(200)),
            ),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(100), &mut ev);
        // High-priority task must never miss: ~100 completions with tight
        // response times.
        let n_high = count_completions(&ev, high);
        assert!((99..=101).contains(&n_high), "high completions {n_high}");
        let high_stats = m.task_stats(high);
        assert!(high_stats.response_max <= SimDuration::from_micros(300));
        // The low task still makes progress in the gaps.
        assert!(m.task_stats(low).useful_time > SimDuration::from_millis(30));
    }

    #[test]
    fn affinity_confines_task() {
        let mut m = machine();
        let root = m.root_cgroup();
        let id = m.spawn(
            TaskSpec::busy_fair("hog", Cost::compute(SimDuration::from_secs(1)))
                .with_affinity(CpuSet::single(3)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(100), &mut ev);
        let stats = m.core_stats();
        assert!(stats[3].busy >= SimDuration::from_millis(99));
        for (c, stat) in stats.iter().enumerate().take(3) {
            assert_eq!(stat.busy, SimDuration::ZERO, "core {c} must stay idle");
        }
        let _ = id;
    }

    #[test]
    fn cgroup_demotes_rt_and_confines() {
        let mut m = machine();
        let cce = m.add_cgroup(Cgroup::container("cce", CpuSet::single(3)));
        // Attacker asks for FIFO 99 on all cores; gets fair on core 3 only.
        let attacker = m.spawn(
            TaskSpec {
                name: "attacker".into(),
                policy: SchedPolicy::Fifo { priority: 99 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
            cce,
        );
        let root = m.root_cgroup();
        let victim = m.spawn(
            TaskSpec::periodic_fifo(
                "safety",
                20,
                SimDuration::from_micros(2500),
                Cost::compute(SimDuration::from_micros(300)),
            )
            .with_affinity(CpuSet::single(3)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(200), &mut ev);
        // The RT victim shares core 3 but always preempts the demoted
        // attacker: no skips.
        assert_eq!(m.task_stats(victim).skips, 0);
        assert!(count_completions(&ev, victim) >= 79);
        // The attacker still runs in the gaps.
        assert!(m.task_stats(attacker).busy_time > SimDuration::from_millis(100));
    }

    #[test]
    fn fair_tasks_share_a_core_evenly() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let a = m.spawn(
            TaskSpec::busy_fair("a", Cost::compute(SimDuration::from_secs(1))),
            root,
        );
        let b = m.spawn(
            TaskSpec::busy_fair("b", Cost::compute(SimDuration::from_secs(1))),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let ta = m.task_stats(a).busy_time.as_secs_f64();
        let tb = m.task_stats(b).busy_time.as_secs_f64();
        assert!((ta - tb).abs() < 0.02, "a {ta} b {tb}");
    }

    #[test]
    fn fair_weights_bias_share() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let heavy = m.spawn(
            TaskSpec {
                name: "heavy".into(),
                policy: SchedPolicy::Fair { weight: 3072 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
            root,
        );
        let light = m.spawn(
            TaskSpec::busy_fair("light", Cost::compute(SimDuration::from_secs(1))),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(2), &mut ev);
        let th = m.task_stats(heavy).busy_time.as_secs_f64();
        let tl = m.task_stats(light).busy_time.as_secs_f64();
        assert!((th / tl - 3.0).abs() < 0.2, "ratio {}", th / tl);
    }

    #[test]
    fn overrun_skip_policy_reports_skips() {
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        // Demand 150% of the core: every other release must skip.
        let id = m.spawn(
            TaskSpec::periodic_fifo(
                "over",
                50,
                SimDuration::from_millis(2),
                Cost::compute(SimDuration::from_millis(3)),
            ),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let st = m.task_stats(id);
        assert!(st.skips > 100, "skips {}", st.skips);
        assert!(st.completions > 100, "completions {}", st.completions);
        // Effective rate collapses to ~333 Hz-worth of work at 500 Hz asks.
        assert!(st.completions < 400);
    }

    #[test]
    fn sporadic_jobs_run_on_injection() {
        let mut m = machine();
        let root = m.root_cgroup();
        let rx = m.spawn(
            TaskSpec::sporadic_fifo("rx", 30, Cost::compute(SimDuration::from_micros(15))),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(10), &mut ev);
        assert_eq!(count_completions(&ev, rx), 0);
        m.inject_job(rx, 100);
        assert_eq!(m.queued_jobs(rx), 100);
        m.step_until(SimTime::from_millis(20), &mut ev);
        assert_eq!(count_completions(&ev, rx), 100);
        assert_eq!(m.queued_jobs(rx), 0);
    }

    #[test]
    fn kill_stops_execution() {
        let mut m = machine();
        let root = m.root_cgroup();
        let id = m.spawn(
            TaskSpec::periodic_fifo(
                "victim",
                50,
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(100)),
            ),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(100), &mut ev);
        let before = m.task_stats(id).completions;
        assert!(before > 0);
        m.kill(id);
        assert!(!m.is_alive(id));
        m.step_until(SimTime::from_millis(200), &mut ev);
        assert_eq!(m.task_stats(id).completions, before);
    }

    #[test]
    fn round_robin_rotates_equal_priority_tasks() {
        // Two always-runnable RR tasks at the same priority on one core:
        // unlike FIFO (where the first-queued task would monopolize), the
        // slice rotation must share the core between them.
        let mut m = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let slice = SimDuration::from_millis(1);
        let mk = |name: &str| TaskSpec {
            name: name.into(),
            policy: SchedPolicy::RoundRobin {
                priority: 50,
                slice,
            },
            affinity: CpuSet::ALL,
            activation: Activation::Busy,
            cost: Cost::compute(SimDuration::from_secs(1)),
        };
        let a = m.spawn(mk("rr-a"), root);
        let b = m.spawn(mk("rr-b"), root);
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let ta = m.task_stats(a).busy_time.as_secs_f64();
        let tb = m.task_stats(b).busy_time.as_secs_f64();
        assert!((ta - tb).abs() < 0.01, "rr share a {ta} b {tb}");
        // A FIFO task set with the same shape starves the second task.
        let mut m2 = Machine::new(MachineConfig {
            n_cores: 1,
            ..MachineConfig::default()
        });
        let root2 = m2.root_cgroup();
        let fa = m2.spawn(
            TaskSpec {
                name: "fifo-a".into(),
                policy: SchedPolicy::Fifo { priority: 50 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
            root2,
        );
        let fb = m2.spawn(
            TaskSpec {
                name: "fifo-b".into(),
                policy: SchedPolicy::Fifo { priority: 50 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
            root2,
        );
        let mut ev2 = Vec::new();
        m2.step_until(SimTime::from_secs(1), &mut ev2);
        assert!(m2.task_stats(fa).busy_time > SimDuration::from_millis(990));
        assert_eq!(m2.task_stats(fb).busy_time, SimDuration::ZERO);
    }

    #[test]
    fn steady_state_assignment_reuse_is_exact() {
        // A flood-like steady state: a deeply backlogged sporadic rx task
        // (completions leave it ready, so no epoch transitions) plus one
        // busy fair flooder — the shape that dominates fleet quanta. In
        // debug builds every reused quantum is cross-checked against the
        // full recomputation inside `assign_cores`, so this test fails if
        // the reuse proof ever misses a case this workload hits.
        let mut m = Machine::new(MachineConfig {
            n_cores: 2,
            ..MachineConfig::default()
        });
        let root = m.root_cgroup();
        let rx = m.spawn(
            TaskSpec::sporadic_fifo("rx", 30, Cost::compute(SimDuration::from_micros(15))),
            root,
        );
        let hog = m.spawn(
            TaskSpec::busy_fair("flooder", Cost::compute(SimDuration::from_secs(1)))
                .with_affinity(CpuSet::single(1)),
            root,
        );
        m.inject_job(rx, 5000);
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        // One backlogged job completes per quantum: 5000 completions in
        // the first 250 ms, then the rx task parks and the hog keeps its
        // core — both phases reuse the assignment on nearly every quantum.
        assert_eq!(m.task_stats(rx).completions, 5000);
        assert!(m.task_stats(hog).busy_time >= SimDuration::from_millis(990));
        assert!(m.core_stats()[1].busy >= SimDuration::from_millis(990));
    }

    #[test]
    fn task_cgroup_is_recorded() {
        let mut m = machine();
        let cce = m.add_cgroup(Cgroup::container("cce", CpuSet::single(3)));
        let root = m.root_cgroup();
        let a = m.spawn(
            TaskSpec::busy_fair("in-cce", Cost::compute(SimDuration::from_secs(1))),
            cce,
        );
        let b = m.spawn(
            TaskSpec::busy_fair("in-root", Cost::compute(SimDuration::from_secs(1))),
            root,
        );
        assert_eq!(m.task_cgroup(a), cce);
        assert_eq!(m.task_cgroup(b), root);
        assert_eq!(m.cgroup(m.task_cgroup(a)).name, "cce");
    }

    #[test]
    fn idle_rates_reflect_load() {
        let mut m = machine();
        let root = m.root_cgroup();
        // 10% periodic load pinned to core 0.
        m.spawn(
            TaskSpec::periodic_fifo(
                "tick",
                40,
                SimDuration::from_millis(1),
                Cost::compute(SimDuration::from_micros(100)),
            )
            .with_affinity(CpuSet::single(0)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(2), &mut ev);
        let idle = m.idle_rates();
        assert!((idle[0] - 0.9).abs() < 0.02, "core0 idle {}", idle[0]);
        for (core, rate) in idle.iter().enumerate().skip(1) {
            assert!(*rate > 0.999, "core {core} idle {rate}");
        }
    }

    #[test]
    fn memory_hog_slows_memory_heavy_victim_across_cores() {
        // End-to-end check of the Fig-4 mechanism inside the scheduler: a
        // busy bandwidth hog on core 3 stretches a memory-heavy periodic
        // task on core 0 past its period.
        let run = |with_hog: bool, with_memguard: bool| {
            let mut m = machine();
            if with_memguard {
                let cfg = MemGuardConfig::single_core(4, 3, 0.05, &m.config().dram);
                m.enable_memguard(cfg);
            }
            let root = m.root_cgroup();
            let victim = m.spawn(
                TaskSpec::periodic_fifo(
                    "flight-stack",
                    80,
                    SimDuration::from_millis(4),
                    Cost::memory_bound(SimDuration::from_micros(1200), 2.0e6, 0.8),
                )
                .with_affinity(CpuSet::single(0)),
                root,
            );
            if with_hog {
                m.spawn(
                    TaskSpec::busy_fair(
                        "bandwidth",
                        Cost::streaming(SimDuration::from_secs(1), 14.0e6, 0.95),
                    )
                    .with_affinity(CpuSet::single(3)),
                    root,
                );
            }
            let mut ev = Vec::new();
            m.step_until(SimTime::from_secs(1), &mut ev);
            m.task_stats(victim)
        };

        let healthy = run(false, false);
        assert_eq!(healthy.skips, 0, "no skips when healthy");

        let attacked = run(true, false);
        assert!(
            attacked.skips > 100,
            "hog must cause massive overruns, got {} skips",
            attacked.skips
        );

        let protected = run(true, true);
        assert!(
            protected.skips < 10,
            "MemGuard must prevent overruns, got {} skips",
            protected.skips
        );
    }
}
