//! Property-based tests for the scheduler: invariants that must hold for
//! arbitrary task sets — work conservation, affinity confinement, priority
//! dominance, and fair-share proportionality.

use proptest::prelude::*;
use rt_sched::prelude::*;
use sim_core::time::{SimDuration, SimTime};

fn machine(n_cores: usize) -> Machine {
    Machine::new(MachineConfig {
        n_cores,
        ..MachineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Total busy time across cores never exceeds wall time × cores, and
    /// per-core busy never exceeds wall time.
    #[test]
    fn work_conservation(
        n_tasks in 1usize..8,
        periods_ms in prop::collection::vec(1u64..20, 8),
        costs_us in prop::collection::vec(50u64..2000, 8),
    ) {
        let mut m = machine(4);
        let root = m.root_cgroup();
        for i in 0..n_tasks {
            m.spawn(
                TaskSpec::periodic_fifo(
                    format!("t{i}"),
                    (10 + i) as u8,
                    SimDuration::from_millis(periods_ms[i]),
                    Cost::compute(SimDuration::from_micros(costs_us[i])),
                ),
                root,
            );
        }
        let mut ev = Vec::new();
        let horizon = SimTime::from_millis(500);
        m.step_until(horizon, &mut ev);
        let wall = horizon.as_secs_f64();
        let mut total = 0.0;
        for c in m.core_stats() {
            let busy = c.busy.as_secs_f64();
            prop_assert!(busy <= wall + 1e-9, "core busy {busy} > wall {wall}");
            total += busy;
        }
        prop_assert!(total <= 4.0 * wall + 1e-9);
    }

    /// A task pinned to one core never occupies any other core.
    #[test]
    fn affinity_confinement(core in 0usize..4, cost_us in 100u64..3000) {
        let mut m = machine(4);
        let root = m.root_cgroup();
        m.spawn(
            TaskSpec::periodic_fifo(
                "pinned",
                50,
                SimDuration::from_millis(2),
                Cost::compute(SimDuration::from_micros(cost_us)),
            )
            .with_affinity(CpuSet::single(core)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(200), &mut ev);
        for (i, c) in m.core_stats().iter().enumerate() {
            if i != core {
                prop_assert_eq!(c.busy, SimDuration::ZERO, "core {} should be idle", i);
            } else {
                prop_assert!(c.busy > SimDuration::ZERO);
            }
        }
    }

    /// On a single core, a feasible high-priority FIFO task never misses,
    /// regardless of what lower-priority load shares the core.
    #[test]
    fn rt_priority_dominance(
        lo_cost_ms in 1u64..40,
        hi_period_ms in 2u64..10,
    ) {
        let mut m = machine(1);
        let root = m.root_cgroup();
        // Low-priority load, possibly overloading the core on its own.
        m.spawn(
            TaskSpec::periodic_fifo(
                "lo",
                10,
                SimDuration::from_millis(50),
                Cost::compute(SimDuration::from_millis(lo_cost_ms)),
            ),
            root,
        );
        // High-priority task using at most 20% of the core.
        let hi_cost = SimDuration::from_millis(hi_period_ms) .mul_f64(0.2);
        let hi = m.spawn(
            TaskSpec::periodic_fifo("hi", 90, SimDuration::from_millis(hi_period_ms),
                Cost::compute(hi_cost)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        prop_assert_eq!(m.task_stats(hi).skips, 0, "high-priority task skipped");
        // Response time bounded by its own cost plus one quantum of
        // blocking granularity.
        let worst = m.task_stats(hi).response_max;
        prop_assert!(
            worst <= hi_cost + SimDuration::from_micros(100),
            "worst response {} for cost {}",
            worst,
            hi_cost
        );
    }

    /// Two always-runnable fair tasks on one core split it proportionally
    /// to their weights.
    #[test]
    fn fair_share_proportionality(wa in 256u32..4096, wb in 256u32..4096) {
        let mut m = machine(1);
        let root = m.root_cgroup();
        let mk = |w: u32, name: &str| TaskSpec {
            name: name.to_string(),
            policy: SchedPolicy::Fair { weight: w },
            affinity: CpuSet::ALL,
            activation: Activation::Busy,
            cost: Cost::compute(SimDuration::from_secs(1)),
        };
        let a = m.spawn(mk(wa, "a"), root);
        let b = m.spawn(mk(wb, "b"), root);
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(2), &mut ev);
        let ta = m.task_stats(a).busy_time.as_secs_f64();
        let tb = m.task_stats(b).busy_time.as_secs_f64();
        let expected = wa as f64 / wb as f64;
        let actual = ta / tb;
        prop_assert!(
            (actual / expected - 1.0).abs() < 0.1,
            "share ratio {actual} vs weight ratio {expected}"
        );
    }

    /// Sporadic servers complete exactly as many jobs as were injected,
    /// regardless of batching.
    #[test]
    fn sporadic_jobs_conserved(batches in prop::collection::vec(1usize..50, 1..10)) {
        let mut m = machine(2);
        let root = m.root_cgroup();
        let rx = m.spawn(
            TaskSpec::sporadic_fifo("rx", 30, Cost::compute(SimDuration::from_micros(20))),
            root,
        );
        let mut ev = Vec::new();
        let mut injected = 0usize;
        for (i, batch) in batches.iter().enumerate() {
            m.step_until(SimTime::from_millis((i as u64 + 1) * 10), &mut ev);
            m.inject_job(rx, *batch);
            injected += *batch;
        }
        m.step_until(SimTime::from_secs(2), &mut ev);
        prop_assert_eq!(m.task_stats(rx).completions as usize, injected);
        prop_assert_eq!(m.queued_jobs(rx), 0);
    }

    /// Periodic accounting: completions + skips never exceed the number of
    /// releases the horizon allows.
    #[test]
    fn release_accounting(period_ms in 1u64..20, cost_us in 50u64..30_000) {
        let mut m = machine(1);
        let root = m.root_cgroup();
        let t = m.spawn(
            TaskSpec::periodic_fifo(
                "t",
                50,
                SimDuration::from_millis(period_ms),
                Cost::compute(SimDuration::from_micros(cost_us)),
            ),
            root,
        );
        let mut ev = Vec::new();
        let horizon_ms = 400u64;
        m.step_until(SimTime::from_millis(horizon_ms), &mut ev);
        let st = m.task_stats(t);
        let max_releases = horizon_ms / period_ms + 1;
        prop_assert!(
            st.completions + st.skips <= max_releases,
            "completions {} + skips {} > releases {}",
            st.completions,
            st.skips,
            max_releases
        );
    }
}
