//! Validation of the response-time analysis against the simulator: for
//! pinned fixed-priority task sets, analysis-certified response bounds
//! must dominate every observed response time, and certified-schedulable
//! sets must run without a single missed release.

use proptest::prelude::*;
use rt_sched::analysis::{response_time_analysis, AnalyzedTask};
use rt_sched::prelude::*;
use sim_core::time::{SimDuration, SimTime};

fn build_and_run(tasks: &[AnalyzedTask], horizon: SimTime) -> Vec<TaskStats> {
    let mut m = Machine::new(MachineConfig::default());
    let root = m.root_cgroup();
    let ids: Vec<TaskId> = tasks
        .iter()
        .map(|t| {
            m.spawn(
                TaskSpec::periodic_fifo(t.name.clone(), t.priority, t.period, t.cost)
                    .with_affinity(CpuSet::single(t.core)),
                root,
            )
        })
        .collect();
    let mut ev = Vec::new();
    m.step_until(horizon, &mut ev);
    ids.iter().map(|id| m.task_stats(*id)).collect()
}

fn arb_taskset() -> impl Strategy<Value = Vec<AnalyzedTask>> {
    prop::collection::vec(
        (
            0usize..2,            // core
            1u8..99,              // priority
            2u64..40,             // period, ms
            100u64..4000,         // wcet, µs
        ),
        1..6,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (core, prio, period_ms, wcet_us))| AnalyzedTask {
                name: format!("t{i}"),
                core,
                priority: prio,
                period: SimDuration::from_millis(period_ms),
                // Align WCETs to the 50 µs scheduler quantum so the
                // continuous-time analysis and the quantum-stepped
                // simulator model the same occupancy (a non-aligned job
                // still holds its core until the quantum ends), and use
                // zero memory traffic: even `Cost::compute`'s token 5%
                // stall fraction dilates jobs fractionally under cross-core
                // traffic, which un-aligns exact-quantum costs. Analyses of
                // memory-active tasks must feed the dilation bound in as
                // `contention` instead (see `inflate_wcet`).
                cost: Cost {
                    cpu: SimDuration::from_micros(wcet_us.div_ceil(50) * 50),
                    mem_bandwidth: 0.0,
                    stall_fraction: 0.0,
                    streaming: false,
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// If the analysis certifies the set, the simulator observes zero
    /// skipped releases and every response time within the computed bound
    /// (plus one scheduler quantum of completion-granularity slack).
    #[test]
    fn certified_sets_meet_their_bounds(tasks in arb_taskset()) {
        let report = response_time_analysis(&tasks, 2, None);
        prop_assume!(report.all_schedulable());

        let stats = build_and_run(&tasks, SimTime::from_secs(2));
        // The simulator runs one task per core per 50 µs quantum, so a job
        // that completes mid-quantum still occupies the core until the
        // quantum ends: each interfering job (and the job itself) can cost
        // up to one extra quantum versus the continuous-time analysis.
        let quantum = SimDuration::from_micros(50);
        for (task, (verdict, stat)) in
            tasks.iter().zip(report.tasks.iter().zip(&stats))
        {
            prop_assert_eq!(stat.skips, 0, "{} skipped", &task.name);
            let same_core = tasks.iter().filter(|j| j.core == task.core).count() as u64;
            let slack = quantum * (same_core + 1);
            let bound = verdict.response.expect("schedulable => bound") + slack;
            prop_assert!(
                stat.response_max <= bound,
                "{}: observed {} > bound {}",
                &task.name,
                stat.response_max,
                bound
            );
        }
    }

    /// Unschedulable verdicts are not vacuous: when the analysis says a
    /// core is overloaded (utilization > 1), the simulator indeed misses
    /// releases on it.
    #[test]
    fn overloaded_cores_really_miss(extra_wcet_us in 4000u64..20_000) {
        let tasks = vec![
            AnalyzedTask {
                name: "hi".into(),
                core: 0,
                priority: 90,
                period: SimDuration::from_millis(4),
                cost: Cost::compute(SimDuration::from_micros(3000)),
            },
            AnalyzedTask {
                name: "lo".into(),
                core: 0,
                priority: 10,
                period: SimDuration::from_millis(8),
                cost: Cost::compute(SimDuration::from_micros(extra_wcet_us)),
            },
        ];
        let report = response_time_analysis(&tasks, 1, None);
        prop_assert!(!report.all_schedulable());
        let stats = build_and_run(&tasks, SimTime::from_secs(1));
        prop_assert!(stats[1].skips > 0, "lo should miss: {:?}", stats[1]);
    }
}
