//! Cost breakdown probe: ns per stepped quantum on a healthy-like task
//! set, and ns per bare `MemorySystem::quantum` call. Not a test —
//! numbers guide the time-leap executor work.

// A probe measures wall time by definition; nothing here touches sim
// state, so the determinism rule the lint backs does not apply.
#![allow(clippy::disallowed_methods)]

use membw::dram::{CoreDemand, DramConfig, MemorySystem};
use rt_sched::machine::{Machine, MachineConfig};
use rt_sched::task::{Cost, CpuSet, TaskSpec};
use sim_core::time::{SimDuration, SimTime};

fn healthy_machine() -> Machine {
    let mut m = Machine::new(MachineConfig {
        n_cores: 4,
        quantum: SimDuration::from_micros(50),
        dram: DramConfig::default(),
    });
    let root = m.root_cgroup();
    let hce = CpuSet::from_cores([0usize, 1, 2]);
    let cce = CpuSet::from_cores([3usize]);
    m.spawn(
        TaskSpec::periodic_fifo(
            "kworker/0",
            40,
            SimDuration::from_millis(10),
            Cost::compute(SimDuration::from_micros(480)),
        )
        .with_affinity(CpuSet::from_cores([0usize])),
        root,
    );
    for core in 1..4usize {
        m.spawn(
            TaskSpec::periodic_fifo(
                "tick",
                40,
                SimDuration::from_millis(10),
                Cost::compute(SimDuration::from_micros(70)),
            )
            .with_affinity(CpuSet::from_cores([core])),
            root,
        );
    }
    m.spawn(
        TaskSpec::periodic_fifo(
            "sensor-driver",
            90,
            SimDuration::from_hz(250.0),
            Cost::memory_bound(SimDuration::from_micros(350), 2.2e6, 0.70),
        )
        .with_affinity(hce),
        root,
    );
    m.spawn(
        TaskSpec::periodic_fifo(
            "motor-driver",
            90,
            SimDuration::from_hz(400.0),
            Cost::compute(SimDuration::from_micros(60)),
        )
        .with_affinity(hce)
        .with_offset(SimDuration::from_micros(200)),
        root,
    );
    m.spawn(
        TaskSpec::periodic_fifo(
            "safety-controller",
            20,
            SimDuration::from_hz(400.0),
            Cost::memory_bound(SimDuration::from_micros(320), 1.5e6, 0.55),
        )
        .with_affinity(hce)
        .with_offset(SimDuration::from_micros(400)),
        root,
    );
    m.spawn(
        TaskSpec::periodic_fifo(
            "security-monitor",
            35,
            SimDuration::from_hz(100.0),
            Cost::compute(SimDuration::from_micros(50)),
        )
        .with_affinity(hce),
        root,
    );
    m.spawn(
        TaskSpec::periodic_fair(
            "cce-pipeline",
            SimDuration::from_hz(250.0),
            Cost::memory_bound(SimDuration::from_micros(900), 2.0e6, 0.60),
        )
        .with_affinity(cce),
        root,
    );
    m.spawn(
        TaskSpec::periodic_fair(
            "cce-rate-loop",
            SimDuration::from_hz(400.0),
            Cost::memory_bound(SimDuration::from_micros(300), 1.0e6, 0.40),
        )
        .with_affinity(cce)
        .with_offset(SimDuration::from_micros(800)),
        root,
    );
    m
}

fn main() {
    let quanta = 600_000u64; // 30 machine-seconds

    // (1) Full stepped machine.
    let mut m = healthy_machine();
    let mut events = Vec::new();
    let t = std::time::Instant::now();
    for _ in 0..quanta {
        m.step(&mut events);
        events.clear();
    }
    let per_step = t.elapsed().as_nanos() as f64 / quanta as f64;
    println!("machine.step:      {per_step:6.1} ns/quantum");

    // (2) leap_to attempt cost on the same machine (mostly returns 0).
    let mut m = healthy_machine();
    let mut events = Vec::new();
    let mut leaped = 0u64;
    let t = std::time::Instant::now();
    let mut now = SimTime::ZERO;
    for _ in 0..quanta {
        let k = m.leap_to(SimTime::MAX);
        leaped += k;
        now = now.max(m.now());
        m.step(&mut events);
        events.clear();
    }
    let per = t.elapsed().as_nanos() as f64 / (quanta + leaped) as f64;
    println!(
        "leap_to+step:      {per:6.1} ns/quantum  ({:.1}% leaped)",
        100.0 * leaped as f64 / (quanta + leaped) as f64
    );

    // (3) Bare memory quantum with three active cores.
    let mut mem = MemorySystem::new(4, DramConfig::default());
    let demands = vec![
        CoreDemand {
            bandwidth: 2.2e6,
            stall_fraction: 0.70,
            streaming: false,
        },
        CoreDemand {
            bandwidth: 0.05e6,
            stall_fraction: 0.05,
            streaming: false,
        },
        CoreDemand::default(),
        CoreDemand {
            bandwidth: 2.0e6,
            stall_fraction: 0.60,
            streaming: false,
        },
    ];
    let dt = SimDuration::from_micros(50);
    let mut now = SimTime::ZERO;
    let t = std::time::Instant::now();
    for _ in 0..quanta {
        let out = mem.quantum(now, dt, &demands);
        std::hint::black_box(out);
        now += dt;
    }
    let per_mem = t.elapsed().as_nanos() as f64 / quanta as f64;
    println!("memory.quantum:    {per_mem:6.1} ns/quantum");

    // (4) Bitwise fixed-point convergence of the served-rate recurrence
    // under constant demands, from a cold start and from a perturbed
    // state (one extra core's traffic just vanished).
    for (label, warm) in [("cold", false), ("warm", true)] {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let mut now = SimTime::ZERO;
        if warm {
            let pre = vec![
                CoreDemand {
                    bandwidth: 2.2e6,
                    stall_fraction: 0.70,
                    streaming: false,
                },
                CoreDemand {
                    bandwidth: 1.5e6,
                    stall_fraction: 0.55,
                    streaming: false,
                },
                CoreDemand {
                    bandwidth: 1.0e6,
                    stall_fraction: 0.40,
                    streaming: false,
                },
                CoreDemand {
                    bandwidth: 2.0e6,
                    stall_fraction: 0.60,
                    streaming: false,
                },
            ];
            for _ in 0..200 {
                mem.quantum(now, dt, &pre);
                now += dt;
            }
        }
        let mut prev: Vec<f64> = Vec::new();
        let mut iters = 0u32;
        for i in 0..200u32 {
            let out: Vec<f64> = mem
                .quantum(now, dt, &demands)
                .iter()
                .map(|o| o.served_lines)
                .collect();
            now += dt;
            if out == prev {
                iters = i;
                break;
            }
            prev = out;
        }
        println!("fixed point ({label}): {iters} quanta");
    }
}
