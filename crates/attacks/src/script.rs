//! Composable attack timelines: an ordered schedule of attack events.
//!
//! The paper evaluates one attack per run; its threat model (and the
//! resilient-control literature it sits in) assumes attackers that
//! *combine and sequence* DoS vectors. An [`AttackScript`] captures that:
//! an ordered list of `(SimTime, AttackEvent)` entries. Any number of
//! attacks may run concurrently, the same attack kind may fire repeatedly,
//! and a [`AttackEvent::CeaseFire`] entry ends the attack window.
//!
//! # Examples
//!
//! ```
//! use attacks::prelude::*;
//! use sim_core::time::SimTime;
//!
//! // Memory hog at 10 s, UDP flood on top at 15 s, then the attacker
//! // kills the complex controller at 20 s.
//! let script = AttackScript::new()
//!     .at(SimTime::from_secs(10), AttackEvent::MemoryHog(BandwidthHog::isolbench()))
//!     .at(SimTime::from_secs(15), AttackEvent::UdpFlood(UdpFlood::against_motor_port()))
//!     .at(SimTime::from_secs(20), AttackEvent::KillComplex);
//! assert_eq!(script.len(), 3);
//! assert_eq!(script.first_onset(), Some(SimTime::from_secs(10)));
//! ```

use sim_core::time::SimTime;

use crate::cpu_hog::CpuHog;
use crate::driver::{AttackCtx, AttackDriver, TaskSetDriver};
use crate::membw_hog::BandwidthHog;
use crate::spoof::MotorSpoof;
use crate::udp_flood::UdpFlood;

/// One schedulable attack action. Pure data: `Clone + PartialEq`, so
/// scenario configurations containing scripts stay comparable and
/// campaign specs can be built from cartesian products.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackEvent {
    /// Launch a memory-bandwidth hog in the container.
    MemoryHog(BandwidthHog),
    /// Launch a UDP flood against the HCE motor port.
    UdpFlood(UdpFlood),
    /// Kill the complex controller's tasks.
    KillComplex,
    /// Launch a CPU hog (confined by the container iff the CPU-isolation
    /// protection is enabled).
    CpuHog(CpuHog),
    /// Launch protocol-valid hostile motor commands.
    SpoofMotor(MotorSpoof),
    /// Halt every attack armed so far (ends the attack window).
    CeaseFire,
}

impl AttackEvent {
    /// Short identifier, matching the armed driver's
    /// [`AttackDriver::name`].
    pub fn name(&self) -> &'static str {
        match self {
            AttackEvent::MemoryHog(_) => "memory-hog",
            AttackEvent::UdpFlood(_) => crate::udp_flood::FloodDriver::NAME,
            AttackEvent::KillComplex => "kill-complex",
            AttackEvent::CpuHog(_) => "cpu-hog",
            AttackEvent::SpoofMotor(_) => "motor-spoof",
            AttackEvent::CeaseFire => "cease-fire",
        }
    }

    /// Arms the event: launches the attack against `ctx` and returns the
    /// live driver. Returns `None` for [`AttackEvent::CeaseFire`], which
    /// the runner handles by halting the already-armed drivers.
    pub fn arm(&self, ctx: &mut AttackCtx<'_>) -> Option<Box<dyn AttackDriver>> {
        match self {
            AttackEvent::MemoryHog(hog) => {
                let tasks = hog.launch(ctx.machine, ctx.container);
                Some(Box::new(TaskSetDriver::new("memory-hog", tasks)))
            }
            AttackEvent::UdpFlood(flood) => {
                let driver = flood
                    .launch(
                        ctx.machine,
                        ctx.net,
                        ctx.container,
                        ctx.host_ns,
                        ctx.src_port,
                    )
                    .expect("flood source port free");
                Some(Box::new(driver))
            }
            AttackEvent::KillComplex => {
                for &t in ctx.controller_tasks {
                    ctx.machine.kill(t);
                }
                Some(Box::new(TaskSetDriver::new(
                    "kill-complex",
                    ctx.controller_tasks.to_vec(),
                )))
            }
            AttackEvent::CpuHog(hog) => {
                let tasks = if ctx.cpu_isolation {
                    hog.launch(ctx.machine, ctx.container)
                } else {
                    hog.launch_unconfined(ctx.machine)
                };
                Some(Box::new(TaskSetDriver::new("cpu-hog", tasks)))
            }
            AttackEvent::SpoofMotor(spoof) => {
                let driver = spoof
                    .launch(
                        ctx.machine,
                        ctx.net,
                        ctx.container,
                        ctx.host_ns,
                        ctx.src_port,
                    )
                    .expect("spoof source port free");
                Some(Box::new(driver))
            }
            AttackEvent::CeaseFire => None,
        }
    }
}

/// One timeline entry: fire `event` at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptEntry {
    /// When the event fires.
    pub at: SimTime,
    /// What fires.
    pub event: AttackEvent,
}

/// An ordered attack schedule.
///
/// Entries are kept sorted by time; entries sharing a timestamp fire in
/// insertion order. The empty script is the healthy baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttackScript {
    entries: Vec<ScriptEntry>,
}

impl AttackScript {
    /// An empty timeline (no attack).
    pub fn new() -> Self {
        AttackScript::default()
    }

    /// Alias for [`AttackScript::new`] that reads well in scenario
    /// definitions.
    pub fn none() -> Self {
        AttackScript::new()
    }

    /// A single-attack timeline — the paper's per-figure shape.
    pub fn single(at: SimTime, event: AttackEvent) -> Self {
        AttackScript::new().at(at, event)
    }

    /// Schedules `event` at `at` (chainable). Keeps the timeline sorted;
    /// same-time entries preserve insertion order.
    #[must_use]
    pub fn at(mut self, at: SimTime, event: AttackEvent) -> Self {
        self.entries.push(ScriptEntry { at, event });
        // Stable sort: equal timestamps keep insertion order.
        self.entries.sort_by_key(|e| e.at);
        self
    }

    /// The schedule, sorted by time.
    pub fn entries(&self) -> &[ScriptEntry] {
        &self.entries
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` for the healthy (attack-free) timeline.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Onset of the first actual attack (ignores bare `CeaseFire`
    /// entries), `None` for a healthy timeline.
    pub fn first_onset(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .find(|e| e.event != AttackEvent::CeaseFire)
            .map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_sort_by_time_regardless_of_insertion_order() {
        let script = AttackScript::new()
            .at(SimTime::from_secs(20), AttackEvent::KillComplex)
            .at(
                SimTime::from_secs(10),
                AttackEvent::MemoryHog(BandwidthHog::isolbench()),
            )
            .at(
                SimTime::from_secs(15),
                AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
            );
        let times: Vec<u64> = script
            .entries()
            .iter()
            .map(|e| e.at.as_micros() / 1_000_000)
            .collect();
        assert_eq!(times, [10, 15, 20]);
    }

    #[test]
    fn same_time_entries_preserve_insertion_order() {
        let t = SimTime::from_secs(5);
        let script = AttackScript::new()
            .at(t, AttackEvent::KillComplex)
            .at(t, AttackEvent::CeaseFire);
        assert_eq!(script.entries()[0].event, AttackEvent::KillComplex);
        assert_eq!(script.entries()[1].event, AttackEvent::CeaseFire);
    }

    #[test]
    fn first_onset_skips_cease_fire() {
        let script = AttackScript::new()
            .at(SimTime::from_secs(2), AttackEvent::CeaseFire)
            .at(SimTime::from_secs(9), AttackEvent::KillComplex);
        assert_eq!(script.first_onset(), Some(SimTime::from_secs(9)));
        assert_eq!(AttackScript::none().first_onset(), None);
        assert!(AttackScript::none().is_empty());
    }

    #[test]
    fn event_names_are_stable_identifiers() {
        assert_eq!(AttackEvent::KillComplex.name(), "kill-complex");
        assert_eq!(
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()).name(),
            "udp-flood"
        );
        assert_eq!(AttackEvent::CeaseFire.name(), "cease-fire");
    }
}
