//! Memory-bandwidth DoS: the IsolBench `Bandwidth` benchmark profile.
//!
//! "We used the Bandwidth from Isolbench, a benchmark that reads or writes
//! a large array sequentially, to simulate the attacker's behavior" (§V-B).
//! A sequential streaming loop on an A53-class core saturates the shared
//! DRAM channel while being almost entirely memory-stalled itself.

use container_rt::container::Container;
use rt_sched::machine::Machine;
use rt_sched::task::{Cost, TaskId, TaskSpec};
use sim_core::time::SimDuration;

/// The Bandwidth attack profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthHog {
    /// Streaming fetch rate of one attack thread, cache lines/s.
    pub bandwidth: f64,
    /// Memory-stall fraction of the attack loop itself.
    pub stall_fraction: f64,
    /// Number of attack threads (the paper runs one, "the only process
    /// running inside the container").
    pub threads: usize,
}

impl BandwidthHog {
    /// The IsolBench `Bandwidth` profile: a single thread streaming at
    /// nearly the full bus rate.
    pub fn isolbench() -> Self {
        BandwidthHog {
            bandwidth: 14.0e6, // ~900 MB/s of 64 B lines: bus-saturating
            stall_fraction: 0.95,
            threads: 1,
        }
    }

    /// Launches the attack inside `container`. Returns the spawned task
    /// ids (they are `Busy` tasks and run until killed or the container
    /// stops).
    pub fn launch(&self, machine: &mut Machine, container: &mut Container) -> Vec<TaskId> {
        (0..self.threads)
            .map(|i| {
                container.run_task(
                    machine,
                    TaskSpec::busy_fair(
                        format!("bandwidth-{i}"),
                        Cost::streaming(
                            SimDuration::from_secs(1),
                            self.bandwidth,
                            self.stall_fraction,
                        ),
                    ),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use container_rt::container::ContainerConfig;
    use rt_sched::machine::MachineConfig;
    use sim_core::time::SimTime;
    use virt_net::net::Network;

    #[test]
    fn hog_saturates_only_its_cpuset_core() {
        let mut m = Machine::new(MachineConfig::default());
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        let ids = BandwidthHog::isolbench().launch(&mut m, &mut c);
        assert_eq!(ids.len(), 1);
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(500), &mut ev);
        assert!(m.core_stats()[3].busy > SimDuration::from_millis(480));
        assert!(m.core_stats()[0].busy < SimDuration::from_millis(20));
        // It really moves memory: the perf counter on core 3 is hot.
        assert!(m.memory().counters()[3].lines > 1.0e6);
    }
}
