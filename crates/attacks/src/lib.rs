//! DoS attack library for the ContainerDrone reproduction.
//!
//! Implements the attacker model of §III-B: malicious code smuggled into
//! the CCE through an update launches resource-exhaustion attacks from
//! *inside* the container. Three attack families from the paper's
//! evaluation, plus a CPU hog for the ablation study:
//!
//! * [`membw_hog`] — the IsolBench `Bandwidth` benchmark ("reads or writes
//!   a large array sequentially"), used for Figures 4 and 5;
//! * [`udp_flood`] — "continuously send packets to the UDP port that the
//!   HCE is listening on", used for Figure 7;
//! * [`kill`] — "the attacker shutdown the complex controller while the
//!   drone is flying", used for Figure 6;
//! * [`spoof`] — protocol-valid hostile motor commands (an *extension*
//!   beyond the paper's DoS model, caught by the attitude-error rule);
//! * [`cpu_hog`] — spin loops that try to monopolize CPU (§III-C defends
//!   this by cpuset + priority restriction).
//!
//! Attacks compose into **timelines**: an [`script::AttackScript`] is an
//! ordered schedule of `(SimTime, AttackEvent)` entries, so a single run
//! can sequence and overlap any number of attacks. Armed attacks are
//! driven generically through the [`driver::AttackDriver`] trait. At the
//! fleet level, a [`fleet::FleetScript`] additionally chooses *which
//! vehicle* each timeline entry lands on (per-victim, broadcast, or
//! rolling-victim placement) and compiles down to plain per-vehicle
//! `AttackScript`s.
//!
//! # Examples
//!
//! ```
//! use attacks::prelude::*;
//! use sim_core::time::SimTime;
//!
//! // Combine vectors the way the threat model allows: exhaust memory
//! // bandwidth, then flood the channel, then kill the controller.
//! let script = AttackScript::new()
//!     .at(SimTime::from_secs(10), AttackEvent::MemoryHog(BandwidthHog::isolbench()))
//!     .at(SimTime::from_secs(15), AttackEvent::UdpFlood(UdpFlood::against_motor_port()))
//!     .at(SimTime::from_secs(20), AttackEvent::KillComplex);
//! assert_eq!(script.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod cpu_hog;
pub mod driver;
pub mod fleet;
pub mod kill;
pub mod membw_hog;
pub mod script;
pub mod spoof;
pub mod udp_flood;

pub use cpu_hog::CpuHog;
pub use driver::{AttackCtx, AttackDriver, TaskSetDriver};
pub use fleet::{AttackerEntry, AttackerTarget, FleetEntry, FleetScript, FleetTarget};
pub use kill::KillController;
pub use membw_hog::BandwidthHog;
pub use script::{AttackEvent, AttackScript, ScriptEntry};
pub use spoof::{MotorSpoof, SpoofDriver};
pub use udp_flood::{FloodDriver, FloodEmitter, UdpFlood};

/// Convenient glob import of the attack types.
pub mod prelude {
    pub use crate::cpu_hog::CpuHog;
    pub use crate::driver::{AttackCtx, AttackDriver, TaskSetDriver};
    pub use crate::fleet::{AttackerEntry, AttackerTarget, FleetEntry, FleetScript, FleetTarget};
    pub use crate::kill::KillController;
    pub use crate::membw_hog::BandwidthHog;
    pub use crate::script::{AttackEvent, AttackScript, ScriptEntry};
    pub use crate::spoof::{MotorSpoof, SpoofDriver};
    pub use crate::udp_flood::{FloodDriver, FloodEmitter, UdpFlood};
}
