//! Communication DoS: a UDP flood against the HCE's listening port.
//!
//! "We launched a program mid-fly that continuously send packets to the
//! UDP port that the HCE is listening on" (§V-C). The damage is threefold:
//! flood datagrams crowd genuine `MotorOutput` frames out of the finite
//! receive queue, each delivered datagram costs rx-thread CPU, and the
//! parser must skip the garbage.

use std::sync::{Arc, Mutex};

use container_rt::container::Container;
use rt_sched::machine::Machine;
use rt_sched::task::{Cost, TaskId, TaskSpec};
use sim_core::time::{SimDuration, SimTime};
use virt_net::net::{Addr, NetError, Network, NsId, SocketId};

use crate::driver::AttackDriver;

/// Hands out the all-zero flood buffer for `len`-byte payloads from a
/// process-global cache, so every armed flooder of a given size — across
/// all vehicles of a fleet, on any thread — shares one allocation instead
/// of carrying its own. Flood payloads are garbage by design ("zeros
/// never parse as a MAVLink frame"), so sharing loses nothing.
pub fn shared_flood_payload(len: usize) -> Arc<[u8]> {
    static CACHE: Mutex<Vec<(usize, Arc<[u8]>)>> = Mutex::new(Vec::new());
    let mut cache = CACHE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, payload)) = cache.iter().find(|(l, _)| *l == len) {
        return Arc::clone(payload);
    }
    let payload: Arc<[u8]> = vec![0u8; len].into();
    cache.push((len, Arc::clone(&payload)));
    payload
}

/// Flood parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UdpFlood {
    /// Packets per second offered.
    pub pps: f64,
    /// Payload size of each flood datagram, bytes.
    pub payload: usize,
    /// Destination port on the host (14600 = the motor-output port).
    pub target_port: u16,
}

impl UdpFlood {
    /// The paper's attack: garbage datagrams at high rate against the
    /// motor-output port.
    pub fn against_motor_port() -> Self {
        UdpFlood {
            pps: 20_000.0,
            payload: 64,
            target_port: 14600,
        }
    }

    /// Starts the flood: binds a sender socket in the container namespace
    /// and spawns the flooding process (a busy task that costs container
    /// CPU). Returns the driver to step each quantum.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] if the sender socket cannot be bound.
    pub fn launch(
        &self,
        machine: &mut Machine,
        net: &mut Network,
        container: &mut Container,
        host_ns: NsId,
        src_port: u16,
    ) -> Result<FloodDriver, NetError> {
        let socket = net.bind(container.netns(), src_port)?;
        let task = container.run_task(
            machine,
            TaskSpec::busy_fair(
                "udp-flooder",
                Cost::memory_bound(SimDuration::from_secs(1), 0.8e6, 0.2),
            ),
        );
        Ok(FloodDriver {
            emitter: FloodEmitter::new(
                socket,
                Addr {
                    ns: host_ns,
                    port: self.target_port,
                },
                self.pps,
                // Garbage payload: zeros never parse as a MAVLink frame.
                // One shared buffer serves every flood packet (fan-out
                // fast-path) and every flooder instance (fleet-wide
                // cache).
                shared_flood_payload(self.payload),
            ),
            task,
        })
    }
}

/// The emission kernel shared by every flooder — onboard
/// ([`FloodDriver`]) or off-board (a fleet attacker node): paces `pps`
/// against a fractional carry accumulator and fans one shared payload
/// out per step through the [`Network::send_shared`] fast-path.
#[derive(Debug)]
pub struct FloodEmitter {
    socket: SocketId,
    dst: Addr,
    pps: f64,
    payload: Arc<[u8]>,
    carry: f64,
    sent: u64,
    active: bool,
}

impl FloodEmitter {
    /// A live emitter offering `pps` copies of `payload` per second from
    /// `socket` to `dst`.
    pub fn new(socket: SocketId, dst: Addr, pps: f64, payload: Arc<[u8]>) -> Self {
        FloodEmitter {
            socket,
            dst,
            pps,
            payload,
            carry: 0.0,
            sent: 0,
            active: true,
        }
    }

    /// Emits `dt`'s worth of flood packets as one counted batch.
    pub fn step(&mut self, net: &mut Network, now: SimTime, dt: SimDuration) {
        if !self.active {
            return;
        }
        self.carry += self.pps * dt.as_secs_f64();
        let mut count = 0u64;
        while self.carry >= 1.0 {
            self.carry -= 1.0;
            count += 1;
        }
        if count > 0 {
            let _ = net.send_shared(self.socket, self.dst, &self.payload, count, now);
            self.sent += count;
        }
    }

    /// The flooded destination.
    pub fn dst(&self) -> Addr {
        self.dst
    }

    /// The sending socket.
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// Upper bound on the datagrams [`FloodEmitter::span_emit`] over
    /// `(from, to)` plus the regular step at `to` will offer: the carry
    /// is always below one token, and the steps at `from + quantum ..= to`
    /// add exactly `pps · (to − from)` tokens between them.
    pub fn span_bound(&self, from: SimTime, to: SimTime) -> u64 {
        (self.carry + self.pps * to.saturating_since(from).as_secs_f64()) as u64 + 1
    }

    /// Replays the carry walk of the per-quantum steps at
    /// `t = from + quantum, from + 2·quantum, …` (strictly below `to`),
    /// offering each step's packets at its historical time. Runs of
    /// quanta with equal emission counts collapse into one
    /// [`Network::send_paced`] span apiece, so the fig7 steady state —
    /// one packet every quantum for seconds on end — becomes a single
    /// queue entry. The carry arithmetic is evaluated per quantum in the
    /// identical order the stepped path uses, so `carry`, `sent` and
    /// every emission time are bit-equal to per-quantum stepping.
    pub fn span_emit(
        &mut self,
        net: &mut Network,
        from: SimTime,
        to: SimTime,
        quantum: SimDuration,
    ) {
        if !self.active {
            return;
        }
        let inc = self.pps * quantum.as_secs_f64();
        let mut t = from + quantum;
        let mut run_count = 0u64;
        let mut run_len = 0u64;
        let mut run_start = t;
        while t < to {
            self.carry += inc;
            let mut count = 0u64;
            while self.carry >= 1.0 {
                self.carry -= 1.0;
                count += 1;
            }
            if count == run_count {
                run_len += 1;
            } else {
                if run_count > 0 && run_len > 0 {
                    let _ = net.send_paced(
                        self.socket,
                        self.dst,
                        &self.payload,
                        run_count,
                        run_len,
                        run_start,
                        quantum,
                    );
                    self.sent += run_count * run_len;
                }
                run_count = count;
                run_len = 1;
                run_start = t;
            }
            t += quantum;
        }
        if run_count > 0 && run_len > 0 {
            let _ = net.send_paced(
                self.socket,
                self.dst,
                &self.payload,
                run_count,
                run_len,
                run_start,
                quantum,
            );
            self.sent += run_count * run_len;
        }
    }

    /// Total packets offered so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Stops emitting (idempotent).
    pub fn stop(&mut self) {
        self.active = false;
    }

    /// `true` until [`FloodEmitter::stop`] is called.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

/// Drives an active flood: call [`FloodDriver::step`] every quantum.
#[derive(Debug)]
pub struct FloodDriver {
    emitter: FloodEmitter,
    task: TaskId,
}

impl FloodDriver {
    /// Stable identifier shared by [`AttackDriver::name`], the timeline
    /// event name and result aggregation.
    pub const NAME: &'static str = "udp-flood";

    /// Emits this quantum's worth of flood packets as one counted batch.
    pub fn step(&mut self, net: &mut Network, now: SimTime, dt: SimDuration) {
        self.emitter.step(net, now, dt);
    }

    /// Total packets offered so far.
    pub fn sent(&self) -> u64 {
        self.emitter.sent()
    }

    /// The flooding process's task id (killable).
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Stops emitting and kills the flooding process (e.g. when the
    /// attack window ends).
    pub fn stop(&mut self, machine: &mut Machine) {
        self.emitter.stop();
        machine.kill(self.task);
    }
}

impl AttackDriver for FloodDriver {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn step(&mut self, net: &mut Network, now: SimTime, dt: SimDuration) {
        FloodDriver::step(self, net, now, dt);
    }

    fn halt(&mut self, machine: &mut Machine) {
        self.stop(machine);
    }

    fn quantum_active(&self) -> bool {
        self.emitter.is_active()
    }

    fn packets_sent(&self) -> u64 {
        self.emitter.sent()
    }

    fn span_dst(&self) -> Option<Addr> {
        if !self.emitter.is_active() {
            return None;
        }
        Some(self.emitter.dst())
    }

    fn span_ready(&self, net: &Network, from: SimTime, to: SimTime, _quantum: SimDuration) -> bool {
        // Slack beyond the flood's own bound for whatever the tail
        // quantum's job dispatch enqueues on the same link direction
        // (a handful of motor frames at most) before the span-end
        // network step finally drains it.
        const TAIL_SLACK: u64 = 64;
        let bound = self.emitter.span_bound(from, to).saturating_add(TAIL_SLACK);
        net.pace_headroom(self.emitter.socket(), self.emitter.dst())
            .is_some_and(|headroom| headroom >= bound)
    }

    fn span_emit(&mut self, net: &mut Network, from: SimTime, to: SimTime, quantum: SimDuration) {
        self.emitter.span_emit(net, from, to, quantum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use container_rt::container::ContainerConfig;
    use rt_sched::machine::MachineConfig;

    #[test]
    fn flood_reaches_offered_rate() {
        let mut m = Machine::new(MachineConfig::default());
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        let rx = net.bind_with_capacity(host, 14600, 100_000).unwrap();

        let mut driver = UdpFlood {
            pps: 5_000.0,
            payload: 64,
            target_port: 14600,
        }
        .launch(&mut m, &mut net, &mut c, host, 40000)
        .unwrap();

        let dt = SimDuration::from_micros(50);
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(1) {
            driver.step(&mut net, t, dt);
            t += dt;
            net.step(t);
        }
        assert!(
            (4_990..=5_010).contains(&(driver.sent() as i64)),
            "{}",
            driver.sent()
        );
        let stats = net.socket_stats(rx);
        // Most packets arrive (large rx buffer, no rate limit configured).
        assert!(stats.delivered > 4_000, "delivered {}", stats.delivered);
    }

    #[test]
    fn span_emit_matches_per_quantum_stepping() {
        // Rates chosen to exercise the carry walk: sub-quantum (counts
        // alternating 0/1), exactly one per quantum (the fig7 case), and
        // multi-packet quanta (counts alternating 3/4).
        for pps in [7_300.0, 20_000.0, 64_000.0] {
            let build = || {
                let mut m = Machine::new(MachineConfig::default());
                let mut net = Network::new();
                let host = net.add_namespace("host");
                let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
                net.add_rate_limit(
                    Addr {
                        ns: host,
                        port: 14600,
                    },
                    2_000.0,
                    200.0,
                );
                let rx = net.bind_with_capacity(host, 14600, 256).unwrap();
                let driver = UdpFlood {
                    pps,
                    payload: 64,
                    target_port: 14600,
                }
                .launch(&mut m, &mut net, &mut c, host, 40000)
                .unwrap();
                (m, net, rx, driver)
            };
            let (_, mut net_a, rx_a, mut stepped) = build();
            let (_, mut net_b, rx_b, mut spanned) = build();

            let q = SimDuration::from_micros(50);
            let end = SimTime::from_millis(40);

            // Reference: step every quantum.
            let mut t = SimTime::ZERO;
            while t <= end {
                stepped.step(&mut net_a, t, q);
                net_a.step(t);
                t += q;
            }

            // Span path, the executor's protocol: a regular step at each
            // span boundary, one post-hoc emission for everything in
            // between, the network stepped only at boundaries. Chunks are
            // sized so the span bound fits the queue headroom — the same
            // gate the runner enforces via `pace_headroom`.
            let mut now = SimTime::ZERO;
            spanned.step(&mut net_b, now, q);
            net_b.step(now);
            while now < end {
                let next = (now + SimDuration::from_millis(5)).min(end);
                assert!(spanned.span_dst().is_some());
                assert!(
                    spanned.span_ready(&net_b, now, next, q),
                    "5 ms chunks must fit the queue headroom (pps {pps})"
                );
                AttackDriver::span_emit(&mut spanned, &mut net_b, now, next, q);
                now = next;
                spanned.step(&mut net_b, now, q);
                net_b.step(now);
            }

            assert_eq!(stepped.sent(), spanned.sent(), "pps {pps}");
            assert_eq!(
                net_a.socket_stats(rx_a),
                net_b.socket_stats(rx_b),
                "pps {pps}"
            );
            loop {
                match (net_a.recv(rx_a), net_b.recv(rx_b)) {
                    (None, None) => break,
                    (Some(p), Some(r)) => {
                        assert_eq!(p.sent, r.sent);
                        assert_eq!(p.payload.as_slice(), r.payload.as_slice());
                    }
                    _ => panic!("delivered streams diverge (pps {pps})"),
                }
            }
        }
    }

    #[test]
    fn stop_halts_the_flood() {
        let mut m = Machine::new(MachineConfig::default());
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        net.bind(host, 14600).unwrap();
        let mut driver = UdpFlood::against_motor_port()
            .launch(&mut m, &mut net, &mut c, host, 40000)
            .unwrap();
        let dt = SimDuration::from_millis(1);
        driver.step(&mut net, SimTime::ZERO, dt);
        let sent = driver.sent();
        assert!(sent > 0);
        driver.stop(&mut m);
        driver.step(&mut net, SimTime::from_millis(1), dt);
        assert_eq!(driver.sent(), sent);
        assert!(!m.is_alive(driver.task()));
    }
}
