//! Safety attack: killing the complex controller.
//!
//! "The attacker might choose to kill it to not only damage the drone's
//! safety but also maximize the resource used for attack" (§V-D). Inside
//! the container the attacker has full control over container processes,
//! so this needs no privilege escalation.

use rt_sched::machine::Machine;
use rt_sched::task::TaskId;

/// Kills a set of tasks (the complex controller's processes) at attack
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillController {
    /// Tasks to kill.
    pub targets: Vec<TaskId>,
}

impl KillController {
    /// Prepares an attack against `targets`.
    pub fn new(targets: Vec<TaskId>) -> Self {
        KillController { targets }
    }

    /// Executes the kill. Idempotent.
    pub fn execute(&self, machine: &mut Machine) {
        for &t in &self.targets {
            machine.kill(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sched::machine::MachineConfig;
    use rt_sched::task::{Cost, TaskSpec};
    use sim_core::time::{SimDuration, SimTime};

    #[test]
    fn kill_terminates_targets_only() {
        let mut m = Machine::new(MachineConfig::default());
        let root = m.root_cgroup();
        let a = m.spawn(
            TaskSpec::periodic_fair(
                "complex",
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(100)),
            ),
            root,
        );
        let b = m.spawn(
            TaskSpec::periodic_fifo(
                "safety",
                20,
                SimDuration::from_millis(4),
                Cost::compute(SimDuration::from_micros(100)),
            ),
            root,
        );
        let attack = KillController::new(vec![a]);
        attack.execute(&mut m);
        attack.execute(&mut m); // idempotent
        assert!(!m.is_alive(a));
        assert!(m.is_alive(b));
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(100), &mut ev);
        assert_eq!(m.task_stats(a).completions, 0);
        assert!(m.task_stats(b).completions > 20);
    }
}
