//! Fleet-level attack placement: *which vehicle* gets *which timeline*.
//!
//! A single-vehicle [`AttackScript`](crate::script::AttackScript) says
//! *when* each attack fires; in a shared airspace the attacker also
//! chooses *where*. A [`FleetScript`] is an ordered schedule of
//! `(SimTime, FleetTarget, AttackEvent)` entries which
//! [`FleetScript::compile`] lowers into one plain per-vehicle
//! `AttackScript` each — the fleet runner stays completely generic and the
//! per-vehicle timeline machinery is reused unchanged.
//!
//! Three placement strategies cover the swarm-DoS literature's shapes:
//!
//! * [`FleetTarget::Vehicle`] — a *per-victim* strike on one vehicle;
//! * [`FleetTarget::Broadcast`] — every vehicle at once (a jammer in
//!   range of the whole formation);
//! * [`FleetTarget::Rolling`] — a *rolling victim*: the attack moves to
//!   the next vehicle every `period`, the classic evasion pattern against
//!   per-victim detection and the moving-target shape studied for UAV
//!   swarm networks.
//!
//! Two further targets place attacks on an attacker that is **not onboard
//! any vehicle** — a hostile peer namespace that joined the airspace:
//!
//! * [`FleetTarget::GcsUplink`] — flood a vehicle's telemetry port on the
//!   ground station, crowding its genuine downlink out of the per-client
//!   ingress budget;
//! * [`FleetTarget::SwarmJam`] — jam a vehicle's V2V coordination port,
//!   starving it of neighbor broadcasts.
//!
//! These compile into [`AttackerEntry`]s via
//! [`FleetScript::compile_attackers`]; the fleet runner lowers them onto
//! external attacker nodes instead of per-vehicle timelines.
//!
//! # Examples
//!
//! ```
//! use attacks::prelude::*;
//! use sim_core::time::{SimDuration, SimTime};
//!
//! // Flood that hops to the next vehicle every 2 s, plus a targeted
//! // controller kill on vehicle 1.
//! let script = FleetScript::new()
//!     .at(
//!         SimTime::from_secs(2),
//!         FleetTarget::Rolling { period: SimDuration::from_secs(2) },
//!         AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
//!     )
//!     .at(SimTime::from_secs(5), FleetTarget::Vehicle(1), AttackEvent::KillComplex);
//! let per_vehicle = script.compile(5, SimTime::from_secs(10));
//! assert_eq!(per_vehicle.len(), 5);
//! assert!(!per_vehicle[0].is_empty(), "rolling flood visits vehicle 0 first");
//! ```

use sim_core::time::{SimDuration, SimTime};

use crate::script::{AttackEvent, AttackScript};

/// Where a fleet-level attack lands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetTarget {
    /// One specific vehicle. Indices wrap modulo the fleet size at
    /// compile time, so a timeline written for a 25-vehicle fleet still
    /// attacks *somebody* when swept down to N = 1.
    Vehicle(usize),
    /// Every vehicle simultaneously.
    Broadcast,
    /// A rolling victim: starting with vehicle 0 at the entry's onset,
    /// the attack is armed against the next vehicle (mod fleet size)
    /// every `period`, with a `CeaseFire` ending each window. Note that
    /// `CeaseFire` halts *all* armed attacks on the outgoing victim, as
    /// the per-vehicle timeline semantics define.
    Rolling {
        /// How long each victim stays under attack.
        period: SimDuration,
    },
    /// An *external* attacker floods vehicle `i`'s telemetry uplink port
    /// on the ground station (index wraps modulo the fleet size). Only
    /// network-emitting events ([`AttackEvent::UdpFlood`]) and
    /// [`AttackEvent::CeaseFire`] are valid here — an off-board node has
    /// no victim CPU or memory to exhaust.
    GcsUplink(usize),
    /// An *external* attacker jams vehicle `i`'s V2V swarm port (index
    /// wraps modulo the fleet size). Same event restrictions as
    /// [`FleetTarget::GcsUplink`].
    SwarmJam(usize),
}

/// Where an *external* attacker's traffic lands — the resolved (wrapped)
/// form of [`FleetTarget::GcsUplink`] / [`FleetTarget::SwarmJam`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackerTarget {
    /// Vehicle `i`'s telemetry port on the ground station.
    GcsUplink(usize),
    /// Vehicle `i`'s V2V swarm port on its radio namespace.
    SwarmJam(usize),
}

impl AttackerTarget {
    /// The victim vehicle's index.
    pub fn vehicle(self) -> usize {
        match self {
            AttackerTarget::GcsUplink(v) | AttackerTarget::SwarmJam(v) => v,
        }
    }
}

/// One compiled attacker-node timeline entry: fire `event` against
/// `target` at `at`, from an off-board hostile namespace.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackerEntry {
    /// When the event fires (the runner quantises arming to its merge
    /// boundaries, so this is a not-before time).
    pub at: SimTime,
    /// Which endpoint the traffic lands on.
    pub target: AttackerTarget,
    /// What fires: a flood, or a cease-fire ending the armed attacks
    /// aimed at `target`.
    pub event: AttackEvent,
}

/// One fleet-timeline entry: fire `event` against `target` at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEntry {
    /// When the event fires (rolling targets: when the first window
    /// opens).
    pub at: SimTime,
    /// Which vehicle(s) it lands on.
    pub target: FleetTarget,
    /// What fires.
    pub event: AttackEvent,
}

/// An ordered fleet-level attack schedule.
///
/// Entries are kept sorted by onset; entries sharing a timestamp keep
/// insertion order. The empty script is the healthy fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetScript {
    entries: Vec<FleetEntry>,
}

impl FleetScript {
    /// An empty fleet timeline (no attack anywhere).
    pub fn new() -> Self {
        FleetScript::default()
    }

    /// Alias for [`FleetScript::new`] that reads well in campaign specs.
    pub fn none() -> Self {
        FleetScript::new()
    }

    /// Schedules `event` against `target` at `at` (chainable).
    #[must_use]
    pub fn at(mut self, at: SimTime, target: FleetTarget, event: AttackEvent) -> Self {
        self.entries.push(FleetEntry { at, target, event });
        self.entries.sort_by_key(|e| e.at);
        self
    }

    /// The schedule, sorted by onset.
    pub fn entries(&self) -> &[FleetEntry] {
        &self.entries
    }

    /// Number of scheduled fleet events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` for the healthy (attack-free) fleet timeline.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the script schedules at least one event on an
    /// *external* attacker node ([`FleetTarget::GcsUplink`] /
    /// [`FleetTarget::SwarmJam`]).
    pub fn has_attacker_entries(&self) -> bool {
        self.entries.iter().any(|e| {
            matches!(
                e.target,
                FleetTarget::GcsUplink(_) | FleetTarget::SwarmJam(_)
            )
        })
    }

    /// Lowers the *external-attacker* side of the schedule into a flat,
    /// onset-sorted list of [`AttackerEntry`]s for a fleet of
    /// `n_vehicles`. Vehicle indices wrap modulo the fleet size, exactly
    /// as [`FleetTarget::Vehicle`] does.
    ///
    /// # Panics
    ///
    /// Panics if an attacker-targeted entry carries an event an off-board
    /// node cannot perform (anything other than a flood or a cease-fire):
    /// external attackers only touch the wire.
    pub fn compile_attackers(&self, n_vehicles: usize) -> Vec<AttackerEntry> {
        if n_vehicles == 0 {
            return Vec::new();
        }
        self.entries
            .iter()
            .filter_map(|entry| {
                let target = match entry.target {
                    FleetTarget::GcsUplink(v) => AttackerTarget::GcsUplink(v % n_vehicles),
                    FleetTarget::SwarmJam(v) => AttackerTarget::SwarmJam(v % n_vehicles),
                    _ => return None,
                };
                assert!(
                    matches!(
                        entry.event,
                        AttackEvent::UdpFlood(_) | AttackEvent::CeaseFire
                    ),
                    "external attacker nodes can only emit network traffic, not {}",
                    entry.event.name()
                );
                Some(AttackerEntry {
                    at: entry.at,
                    target,
                    event: entry.event.clone(),
                })
            })
            .collect()
    }

    /// Lowers the fleet schedule into one per-vehicle [`AttackScript`]
    /// for a fleet of `n_vehicles` flying until `end`. Attacker-node
    /// entries are not per-vehicle and are skipped here — they lower via
    /// [`FleetScript::compile_attackers`] instead.
    ///
    /// Rolling targets expand into their full window sequence here, so
    /// the result is pure data: deterministic, comparable, and directly
    /// consumable by the per-vehicle runner.
    pub fn compile(&self, n_vehicles: usize, end: SimTime) -> Vec<AttackScript> {
        let mut scripts = vec![AttackScript::new(); n_vehicles];
        if n_vehicles == 0 {
            return scripts;
        }
        let add = |scripts: &mut Vec<AttackScript>, v: usize, at: SimTime, ev: AttackEvent| {
            scripts[v] = std::mem::take(&mut scripts[v]).at(at, ev);
        };
        for entry in &self.entries {
            match entry.target {
                FleetTarget::GcsUplink(_) | FleetTarget::SwarmJam(_) => {}
                FleetTarget::Vehicle(i) => {
                    add(&mut scripts, i % n_vehicles, entry.at, entry.event.clone());
                }
                FleetTarget::Broadcast => {
                    for v in 0..n_vehicles {
                        add(&mut scripts, v, entry.at, entry.event.clone());
                    }
                }
                FleetTarget::Rolling { period } => {
                    assert!(
                        period > SimDuration::ZERO,
                        "rolling-victim period must be positive"
                    );
                    let mut t = entry.at;
                    let mut k = 0usize;
                    while t < end {
                        let victim = k % n_vehicles;
                        add(&mut scripts, victim, t, entry.event.clone());
                        let window_end = t + period;
                        if window_end < end {
                            add(&mut scripts, victim, window_end, AttackEvent::CeaseFire);
                        }
                        t = window_end;
                        k += 1;
                    }
                }
            }
        }
        scripts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp_flood::UdpFlood;

    fn flood() -> AttackEvent {
        AttackEvent::UdpFlood(UdpFlood::against_motor_port())
    }

    #[test]
    fn per_victim_and_broadcast_place_events() {
        let script = FleetScript::new()
            .at(SimTime::from_secs(3), FleetTarget::Vehicle(2), flood())
            .at(
                SimTime::from_secs(5),
                FleetTarget::Broadcast,
                AttackEvent::KillComplex,
            );
        let per = script.compile(4, SimTime::from_secs(10));
        assert_eq!(per[2].len(), 2, "victim gets flood + broadcast kill");
        for (v, s) in per.iter().enumerate() {
            assert!(
                s.entries()
                    .iter()
                    .any(|e| e.event == AttackEvent::KillComplex),
                "vehicle {v} missing the broadcast kill"
            );
        }
        assert_eq!(per[0].len(), 1);
    }

    #[test]
    fn vehicle_index_wraps_modulo_fleet_size() {
        let script = FleetScript::new().at(SimTime::from_secs(1), FleetTarget::Vehicle(7), flood());
        let per = script.compile(3, SimTime::from_secs(5));
        assert_eq!(per[1].len(), 1, "7 mod 3 = 1");
        assert!(per[0].is_empty() && per[2].is_empty());
        let single = script.compile(1, SimTime::from_secs(5));
        assert_eq!(single[0].len(), 1, "N=1 still gets attacked");
    }

    #[test]
    fn rolling_victim_rotates_with_cease_fire_windows() {
        let script = FleetScript::new().at(
            SimTime::from_secs(2),
            FleetTarget::Rolling {
                period: SimDuration::from_secs(2),
            },
            flood(),
        );
        let per = script.compile(3, SimTime::from_secs(10));
        // Windows: v0@[2,4), v1@[4,6), v2@[6,8), v0@[8,10).
        let onsets = |s: &AttackScript| {
            s.entries()
                .iter()
                .filter(|e| e.event != AttackEvent::CeaseFire)
                .map(|e| e.at.as_micros() / 1_000_000)
                .collect::<Vec<_>>()
        };
        assert_eq!(onsets(&per[0]), [2, 8]);
        assert_eq!(onsets(&per[1]), [4]);
        assert_eq!(onsets(&per[2]), [6]);
        // Every window except ones truncated by the end of flight closes
        // with a cease-fire.
        let ceases = per
            .iter()
            .flat_map(|s| s.entries())
            .filter(|e| e.event == AttackEvent::CeaseFire)
            .count();
        assert_eq!(ceases, 3, "the final window is open-ended");
    }

    #[test]
    fn compile_is_deterministic() {
        let script = FleetScript::new()
            .at(
                SimTime::from_secs(2),
                FleetTarget::Rolling {
                    period: SimDuration::from_millis(1500),
                },
                flood(),
            )
            .at(
                SimTime::from_secs(3),
                FleetTarget::Broadcast,
                AttackEvent::KillComplex,
            );
        assert_eq!(
            script.compile(25, SimTime::from_secs(30)),
            script.compile(25, SimTime::from_secs(30))
        );
    }

    #[test]
    fn attacker_targets_compile_off_the_vehicle_timelines() {
        let script = FleetScript::new()
            .at(SimTime::from_secs(2), FleetTarget::GcsUplink(7), flood())
            .at(SimTime::from_secs(3), FleetTarget::SwarmJam(1), flood())
            .at(
                SimTime::from_secs(4),
                FleetTarget::GcsUplink(7),
                AttackEvent::CeaseFire,
            )
            .at(SimTime::from_secs(5), FleetTarget::Vehicle(0), flood());
        assert!(script.has_attacker_entries());

        // Vehicle timelines see only the per-victim strike...
        let per = script.compile(5, SimTime::from_secs(10));
        assert_eq!(per[0].len(), 1);
        assert!(per.iter().skip(1).all(AttackScript::is_empty));

        // ...and the attacker schedule gets the rest, wrapped mod N.
        let attacker = script.compile_attackers(5);
        assert_eq!(attacker.len(), 3);
        assert_eq!(attacker[0].target, AttackerTarget::GcsUplink(2));
        assert_eq!(attacker[0].target.vehicle(), 2);
        assert_eq!(attacker[1].target, AttackerTarget::SwarmJam(1));
        assert_eq!(attacker[2].event, AttackEvent::CeaseFire);
        assert!(FleetScript::none().compile_attackers(5).is_empty());
        assert!(script.compile_attackers(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "only emit network traffic")]
    fn non_network_events_cannot_target_the_attacker_node() {
        FleetScript::new()
            .at(
                SimTime::from_secs(1),
                FleetTarget::GcsUplink(0),
                AttackEvent::KillComplex,
            )
            .compile_attackers(3);
    }

    #[test]
    fn empty_fleet_compiles_to_nothing() {
        assert!(FleetScript::none().is_empty());
        assert_eq!(
            FleetScript::none().compile(3, SimTime::from_secs(1)).len(),
            3
        );
        let script = FleetScript::new().at(SimTime::ZERO, FleetTarget::Broadcast, flood());
        assert!(script.compile(0, SimTime::from_secs(1)).is_empty());
    }
}
