//! CPU DoS: spin loops that try to monopolize the processor, optionally
//! requesting real-time priority (which Docker-confined tasks are denied,
//! §III-C — the ablation benches flip that protection off).

use container_rt::container::Container;
use rt_sched::machine::Machine;
use rt_sched::task::{Activation, Cost, CpuSet, SchedPolicy, TaskId, TaskSpec};
use sim_core::time::SimDuration;

/// A CPU-hogging attack: `threads` spin loops, optionally demanding
/// `SCHED_FIFO` at a priority that would dominate the safety controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuHog {
    /// Number of spinner threads (a fork-bomb-lite).
    pub threads: usize,
    /// Whether the attacker tries to raise itself to an RT class.
    pub request_realtime: bool,
}

impl CpuHog {
    /// A single best-effort spinner.
    pub fn single() -> Self {
        CpuHog {
            threads: 1,
            request_realtime: false,
        }
    }

    /// An aggressive variant: four spinners demanding FIFO 95 (above the
    /// paper's kernel drivers at 90). Inside an intact container this is
    /// demoted and confined; the ablation removes those restrictions.
    pub fn aggressive() -> Self {
        CpuHog {
            threads: 4,
            request_realtime: true,
        }
    }

    fn spec(&self, i: usize) -> TaskSpec {
        TaskSpec {
            name: format!("cpu-hog-{i}"),
            policy: if self.request_realtime {
                SchedPolicy::Fifo { priority: 95 }
            } else {
                SchedPolicy::Fair { weight: 1024 }
            },
            affinity: CpuSet::ALL,
            activation: Activation::Busy,
            cost: Cost::compute(SimDuration::from_secs(1)),
        }
    }

    /// Launches the hog inside `container` (restrictions apply).
    pub fn launch(&self, machine: &mut Machine, container: &mut Container) -> Vec<TaskId> {
        (0..self.threads)
            .map(|i| container.run_task(machine, self.spec(i)))
            .collect()
    }

    /// Launches the hog directly on the host — the unprotected baseline of
    /// the CPU-protection ablation (no cpuset, no priority restriction).
    pub fn launch_unconfined(&self, machine: &mut Machine) -> Vec<TaskId> {
        let root = machine.root_cgroup();
        (0..self.threads)
            .map(|i| machine.spawn(self.spec(i), root))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use container_rt::container::ContainerConfig;
    use rt_sched::machine::MachineConfig;
    use sim_core::time::SimTime;
    use virt_net::net::Network;

    fn safety_task(m: &mut Machine) -> TaskId {
        let root = m.root_cgroup();
        m.spawn(
            TaskSpec::periodic_fifo(
                "safety",
                20,
                SimDuration::from_micros(2500),
                Cost::compute(SimDuration::from_micros(400)),
            ),
            root,
        )
    }

    #[test]
    fn confined_hog_cannot_starve_safety_controller() {
        let mut m = Machine::new(MachineConfig::default());
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        let safety = safety_task(&mut m);
        CpuHog::aggressive().launch(&mut m, &mut c);
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let st = m.task_stats(safety);
        assert_eq!(st.skips, 0, "safety controller never starves");
        assert!(st.completions >= 398);
    }

    #[test]
    fn unconfined_rt_hog_starves_safety_controller() {
        // The ablation: without Docker's restrictions, four FIFO-95
        // spinners own all cores and the FIFO-20 safety controller starves.
        let mut m = Machine::new(MachineConfig::default());
        let safety = safety_task(&mut m);
        CpuHog::aggressive().launch_unconfined(&mut m);
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        let st = m.task_stats(safety);
        assert!(st.skips > 300, "safety starved: {} skips", st.skips);
    }
}
