//! The runtime side of the timeline API: armed attacks as trait objects.
//!
//! An [`crate::script::AttackEvent`] is pure data; when its scheduled time
//! arrives the runner *arms* it against an [`AttackCtx`], producing a
//! boxed [`AttackDriver`] that lives for the rest of the run (or until a
//! `CeaseFire` event halts it). The runner then advances every armed
//! driver each scheduler quantum, so any number of attacks — of the same
//! or different kinds — can overlap freely.

use rt_sched::machine::Machine;
use rt_sched::task::TaskId;
use sim_core::time::{SimDuration, SimTime};
use virt_net::net::{Addr, Network, NsId};

use container_rt::container::Container;

/// Everything an attack may touch when it arms: the machine (to spawn or
/// kill tasks), the network (to bind sockets), the container it escapes
/// from, and runner-provided targeting data.
pub struct AttackCtx<'a> {
    /// The simulated machine.
    pub machine: &'a mut Machine,
    /// The virtual network.
    pub net: &'a mut Network,
    /// The container the attacker controls.
    pub container: &'a mut Container,
    /// The host namespace (victim side of the bridged channel).
    pub host_ns: NsId,
    /// Tasks of the complex controller (targets for kill attacks).
    pub controller_tasks: &'a [TaskId],
    /// Whether the CPU-isolation protection currently confines the
    /// attacker to the container's cpuset and non-RT priority.
    pub cpu_isolation: bool,
    /// Source port allocated to this arming (unique per armed attack, so
    /// concurrent network attacks never collide on a bind).
    pub src_port: u16,
}

/// A live, armed attack.
///
/// Implemented by all five attack families; the runner drives armed
/// attacks generically through this trait, which is what makes the
/// timeline composable — adding a sixth attack kind touches no runner
/// code. `Send` is a supertrait because a fleet executor moves whole
/// vehicles (armed attacks included) onto worker threads.
pub trait AttackDriver: std::fmt::Debug + Send {
    /// Short identifier used in markers, logs and reports.
    fn name(&self) -> &'static str;

    /// Advances the attack by one scheduler quantum (network attacks emit
    /// their packets here; resource hogs are pure scheduler load and keep
    /// the default no-op).
    fn step(&mut self, _net: &mut Network, _now: SimTime, _dt: SimDuration) {}

    /// Halts the attack: stop emitting and kill its processes. Called by
    /// `CeaseFire` events. Idempotent.
    fn halt(&mut self, _machine: &mut Machine) {}

    /// `true` while [`AttackDriver::step`] has per-quantum work to do.
    /// Resource hogs are pure scheduler load (their `step` is the default
    /// no-op) and halted emitters stay silent, so both report `false` —
    /// which is what lets an event-driven executor skip their `step`
    /// calls across a leaped span without changing behavior.
    fn quantum_active(&self) -> bool {
        false
    }

    /// Datagrams offered to the network so far (0 for non-network
    /// attacks).
    fn packets_sent(&self) -> u64 {
        0
    }

    /// Span-emission capability: `Some(dst)` if this driver can
    /// reproduce, post-hoc in one batch, exactly the traffic its
    /// per-quantum [`AttackDriver::step`] calls would have offered across
    /// an event-free span — all of it aimed at `dst`. The executor uses
    /// the address to keep leaping across the driver's own deliveries
    /// (they cannot wake anything while the flooded receiver is inert)
    /// while every *other* arrival still breaks the span. `None` — the
    /// default — means per-quantum stepping is the only exact schedule.
    fn span_dst(&self) -> Option<Addr> {
        None
    }

    /// Whether a concrete span `(from, to)` is provably exact to emit in
    /// one batch — in particular, that the link queue has headroom for
    /// every datagram the span plus the regular tail step at `to` can
    /// offer, so a capacity boundary the per-quantum schedule would never
    /// hit (its deliveries drain the queue between sends) cannot surface
    /// under deferred delivery. Only meaningful when
    /// [`AttackDriver::span_dst`] is `Some`.
    fn span_ready(
        &self,
        _net: &Network,
        _from: SimTime,
        _to: SimTime,
        _quantum: SimDuration,
    ) -> bool {
        false
    }

    /// Emits, post-hoc at their historical times, the packets the
    /// skipped per-quantum steps at `t = from + quantum, from +
    /// 2·quantum, …` (strictly below `to`) would have sent. Only called
    /// after [`AttackDriver::span_ready`] approved a window containing
    /// `(from, to)`; the default is unreachable by construction and does
    /// nothing.
    fn span_emit(
        &mut self,
        _net: &mut Network,
        _from: SimTime,
        _to: SimTime,
        _quantum: SimDuration,
    ) {
    }
}

/// Shared helper for hog-style attacks whose entire runtime state is the
/// set of spawned tasks.
#[derive(Debug)]
pub struct TaskSetDriver {
    name: &'static str,
    tasks: Vec<TaskId>,
}

impl TaskSetDriver {
    /// Wraps spawned attack tasks under `name`.
    pub fn new(name: &'static str, tasks: Vec<TaskId>) -> Self {
        TaskSetDriver { name, tasks }
    }

    /// The spawned attack tasks.
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }
}

impl AttackDriver for TaskSetDriver {
    fn name(&self) -> &'static str {
        self.name
    }

    fn halt(&mut self, machine: &mut Machine) {
        for &t in &self.tasks {
            machine.kill(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sched::machine::MachineConfig;
    use rt_sched::task::{Cost, TaskSpec};

    #[test]
    fn task_set_driver_halt_kills_every_task() {
        let mut m = Machine::new(MachineConfig::default());
        let root = m.root_cgroup();
        let tasks: Vec<TaskId> = (0..3)
            .map(|i| {
                m.spawn(
                    TaskSpec::busy_fair(
                        format!("hog-{i}"),
                        Cost::compute(SimDuration::from_secs(1)),
                    ),
                    root,
                )
            })
            .collect();
        let mut driver = TaskSetDriver::new("test-hog", tasks.clone());
        assert_eq!(driver.name(), "test-hog");
        assert_eq!(driver.packets_sent(), 0);
        driver.halt(&mut m);
        driver.halt(&mut m); // idempotent
        for t in tasks {
            assert!(!m.is_alive(t));
        }
    }
}
