//! Command spoofing: protocol-valid, malicious `MotorOutput` frames.
//!
//! The paper's attacker model is DoS-only, but its §I cites MAVLink
//! hijacking as motivation. This extension implements that stronger
//! attacker: instead of flooding garbage, the compromised CCE emits
//! *well-formed* motor commands with hostile content (full differential
//! throttle). The rx thread accepts them — they parse and checksum
//! perfectly — so neither iptables nor the receive-interval rule reacts;
//! the attack is caught by the *attitude-error* rule, demonstrating the
//! physical-state leg of the paper's security monitoring.

use container_rt::container::Container;
use mavlink_lite::frame::Sender;

use crate::driver::AttackDriver;
use mavlink_lite::messages::{Message, MotorOutput};
use rt_sched::machine::Machine;
use rt_sched::task::{Cost, TaskId, TaskSpec};
use sim_core::time::{SimDuration, SimTime};
use virt_net::net::{Addr, NetError, Network, NsId, SocketId};

/// Spoofing-attack parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotorSpoof {
    /// Forged commands per second (should exceed the legitimate 400 Hz so
    /// the attacker's values dominate the "latest command" slot).
    pub pps: f64,
    /// The hostile PWM pattern. The default commands maximum roll torque.
    pub pwm: [u16; 4],
}

impl Default for MotorSpoof {
    fn default() -> Self {
        MotorSpoof {
            pps: 1200.0,
            // Max thrust on the left motors (RL, FL), min on the right:
            // a hard roll-right command.
            pwm: [1000, 2000, 2000, 1000],
        }
    }
}

impl MotorSpoof {
    /// A moderate variant: enough differential to visibly upset the
    /// vehicle, slow enough that a well-tuned attitude rule can win the
    /// race (see `ScenarioConfig::spoof`).
    pub fn moderate() -> Self {
        MotorSpoof {
            pps: 500.0,
            pwm: [1440, 1560, 1560, 1440],
        }
    }

    /// Starts the spoofer: binds a sender socket in the container
    /// namespace and spawns the forging process.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] if the source socket cannot be bound.
    pub fn launch(
        &self,
        machine: &mut Machine,
        net: &mut Network,
        container: &mut Container,
        host_ns: NsId,
        src_port: u16,
    ) -> Result<SpoofDriver, NetError> {
        let socket = net.bind(container.netns(), src_port)?;
        let task = container.run_task(
            machine,
            TaskSpec::busy_fair("motor-spoofer", Cost::compute(SimDuration::from_secs(1))),
        );
        Ok(SpoofDriver {
            socket,
            task,
            target: Addr {
                ns: host_ns,
                port: 14600,
            },
            pps: self.pps,
            pwm: self.pwm,
            // Forge the CCE's identity so the frames are indistinguishable.
            sender: Sender::new(2, 1),
            seq: 1_000_000,
            carry: 0.0,
            sent: 0,
            active: true,
        })
    }
}

/// Drives an active spoofing attack; step every quantum.
#[derive(Debug)]
pub struct SpoofDriver {
    socket: SocketId,
    task: TaskId,
    target: Addr,
    pps: f64,
    pwm: [u16; 4],
    sender: Sender,
    seq: u32,
    carry: f64,
    sent: u64,
    active: bool,
}

impl SpoofDriver {
    /// Emits this quantum's worth of forged commands.
    pub fn step(&mut self, net: &mut Network, now: SimTime, dt: SimDuration) {
        if !self.active {
            return;
        }
        self.carry += self.pps * dt.as_secs_f64();
        while self.carry >= 1.0 {
            self.carry -= 1.0;
            self.seq = self.seq.wrapping_add(1);
            let msg = MotorOutput {
                time_usec: now.as_micros(),
                pwm: self.pwm,
                seq: self.seq,
                armed: 1,
            };
            // Each forgery differs (sequence numbers), so the pooled
            // per-sender buffer is re-encoded rather than shared.
            let mut wire = net.take_buf();
            self.sender.encode_into(Message::Motor(msg), &mut wire);
            let _ = net.send(self.socket, self.target, wire, now);
            self.sent += 1;
        }
    }

    /// Forged frames sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The spoofer process's task id.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Stops forging (e.g. when the attack window ends).
    pub fn stop(&mut self, machine: &mut Machine) {
        self.active = false;
        machine.kill(self.task);
    }
}

impl AttackDriver for SpoofDriver {
    fn name(&self) -> &'static str {
        "motor-spoof"
    }

    fn step(&mut self, net: &mut Network, now: SimTime, dt: SimDuration) {
        SpoofDriver::step(self, net, now, dt);
    }

    fn halt(&mut self, machine: &mut Machine) {
        self.stop(machine);
    }

    fn quantum_active(&self) -> bool {
        self.active
    }

    fn packets_sent(&self) -> u64 {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use container_rt::container::ContainerConfig;
    use mavlink_lite::parser::Parser;
    use rt_sched::machine::MachineConfig;

    #[test]
    fn spoofed_frames_parse_as_valid_motor_output() {
        let mut m = Machine::new(MachineConfig::default());
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        let rx = net.bind(host, 14600).unwrap();

        let mut driver = MotorSpoof::default()
            .launch(&mut m, &mut net, &mut c, host, 41000)
            .unwrap();
        let dt = SimDuration::from_millis(1);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            driver.step(&mut net, t, dt);
            t += dt;
            net.step(t);
        }
        assert!(driver.sent() > 100);

        // Every delivered frame decodes cleanly to the hostile command.
        let mut parser = Parser::new();
        let mut hostile = 0;
        while let Some(pkt) = net.recv(rx) {
            for frame in parser.push(&pkt.payload) {
                if let Message::Motor(mo) = frame.message {
                    assert_eq!(mo.pwm, [1000, 2000, 2000, 1000]);
                    assert_eq!(mo.armed, 1);
                    hostile += 1;
                }
            }
        }
        assert!(hostile > 100);
        assert_eq!(
            parser.stats().crc_errors,
            0,
            "forgeries are protocol-perfect"
        );
    }
}
