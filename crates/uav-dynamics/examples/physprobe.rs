//! Physics floor probe: ns per 500 µs world substep, stepped in
//! quantum-sized (50 µs) calls the way the runner drives it.

// A probe measures wall time by definition; nothing here touches sim
// state, so the determinism rule the lint backs does not apply.
#![allow(clippy::disallowed_methods)]

use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::prelude::*;

fn main() {
    let mut world = World::new(WorldConfig::default(), 1);
    world.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
    let hover = world.quad_params().hover_command();
    world.set_motor_commands([hover; 4]);

    let quantum = SimDuration::from_micros(50);
    let secs = 30u64;
    let quanta = secs * 20_000;
    let t = std::time::Instant::now();
    let mut now = SimTime::ZERO;
    for _ in 0..quanta {
        now += quantum;
        world.advance_to(now);
    }
    let total = t.elapsed().as_nanos() as f64;
    let substeps = (secs * 2000) as f64;
    println!(
        "advance_to: {:.0} ns/substep  ({:.1} ns amortized per quantum)",
        total / substeps,
        total / quanta as f64
    );

    // SoA batch: 32 lanes advanced 100 ms at a time (a poll window).
    let lanes = 32usize;
    let mut worlds: Vec<World> = (0..lanes)
        .map(|i| {
            let mut w = World::new(WorldConfig::default(), i as u64);
            w.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
            w.set_motor_commands([hover; 4]);
            w
        })
        .collect();
    let mut batch = uav_dynamics::WorldBatch::default();
    let window = SimDuration::from_millis(100);
    let windows = 300u64;
    let t = std::time::Instant::now();
    let mut now = SimTime::ZERO;
    for _ in 0..windows {
        now += window;
        batch.clear();
        for w in &mut worlds {
            batch.enroll(w, now);
        }
        batch.advance();
        for (lane, w) in worlds.iter_mut().enumerate() {
            batch.scatter_into(lane, w);
        }
    }
    let total = t.elapsed().as_nanos() as f64;
    let substeps = (windows * 200 * lanes as u64) as f64;
    println!(
        "batch.advance: {:.0} ns/substep ({lanes} lanes)",
        total / substeps
    );
}
