//! The assembled physical world: airframe + wind + sensors + crash detector.
//!
//! [`World`] is the single physical truth the rest of the framework talks to:
//! the HCE sensor driver *samples* it, the motor driver *actuates* it, and
//! the scenario loop *steps* it between scheduler quanta.

use sim_core::rng::Rng;
use sim_core::time::{SimDuration, SimTime};

use crate::crash::{Crash, CrashConfig, CrashDetector};
use crate::environment::{FlightCage, Wind, WindConfig};
use crate::math::{Mat3, Vec3};
use crate::motor::Motor;
use crate::quad::{QuadParams, QuadState, Quadrotor};
use crate::sensors::{
    Baro, BaroConfig, BaroSample, Imu, ImuConfig, ImuSample, PositionFix, Positioning,
    PositioningConfig,
};

/// Everything needed to build a [`World`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldConfig {
    /// Airframe parameters.
    pub quad: QuadParams,
    /// Wind model.
    pub wind: WindConfig,
    /// IMU noise model.
    pub imu: ImuConfig,
    /// Barometer noise model.
    pub baro: BaroConfig,
    /// Positioning source (Vicon by default, as in the paper's lab).
    pub positioning: PositioningConfig,
    /// Crash thresholds.
    pub crash: CrashConfig,
    /// Flight volume.
    pub cage: FlightCage,
    /// Physics integration step.
    pub physics_dt: SimDuration,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            quad: QuadParams::default(),
            wind: WindConfig::default(),
            imu: ImuConfig::default(),
            baro: BaroConfig::default(),
            positioning: PositioningConfig::vicon(),
            crash: CrashConfig::default(),
            cage: FlightCage::default(),
            physics_dt: SimDuration::from_micros(500), // 2 kHz
        }
    }
}

/// One world's physics state, moved out by value for the SoA batch
/// executor: everything [`World::advance_to`] touches, nothing it does
/// not. All fields are heap-free, so gather/scatter is a plain copy.
pub(crate) struct LaneState {
    pub(crate) dt: SimDuration,
    pub(crate) now: SimTime,
    pub(crate) params: QuadParams,
    pub(crate) inertia_inv: Mat3,
    pub(crate) state: QuadState,
    pub(crate) motors: [Motor; 4],
    pub(crate) on_ground: bool,
    pub(crate) wind: Wind,
    pub(crate) detector: CrashDetector,
}

/// The simulated physical world.
///
/// # Examples
///
/// ```
/// use uav_dynamics::world::{World, WorldConfig};
/// use uav_dynamics::math::Vec3;
/// use sim_core::time::SimTime;
///
/// let mut world = World::new(WorldConfig::default(), 42);
/// world.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
/// world.advance_to(SimTime::from_millis(100));
/// assert!(world.crash().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    quad: Quadrotor,
    wind: Wind,
    imu: Imu,
    baro: Baro,
    positioning: Positioning,
    detector: CrashDetector,
    now: SimTime,
}

impl World {
    /// Builds a world whose noise streams derive from `seed`.
    pub fn new(config: WorldConfig, seed: u64) -> Self {
        World {
            quad: Quadrotor::new(config.quad),
            wind: Wind::new(config.wind, Rng::derive(seed, "wind")),
            imu: Imu::new(config.imu, Rng::derive(seed, "imu")),
            baro: Baro::new(config.baro, Rng::derive(seed, "baro")),
            positioning: Positioning::new(config.positioning, Rng::derive(seed, "positioning")),
            detector: CrashDetector::new(config.crash, config.cage),
            now: SimTime::ZERO,
            config,
        }
    }

    /// The configuration this world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Current simulation time of the physics.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ground-truth vehicle state.
    pub fn truth(&self) -> &QuadState {
        self.quad.state()
    }

    /// Airframe parameters.
    pub fn quad_params(&self) -> &QuadParams {
        self.quad.params()
    }

    /// `true` while resting on the ground.
    pub fn on_ground(&self) -> bool {
        self.quad.on_ground()
    }

    /// The first detected crash, if any.
    pub fn crash(&self) -> Option<Crash> {
        self.detector.crash()
    }

    /// Places the vehicle in a steady hover at `position` (NED).
    pub fn start_at_hover(&mut self, position: Vec3) {
        self.quad.start_at_hover(position);
    }

    /// Applies motor PWM commands (the actuation path of the HCE motor
    /// driver).
    pub fn set_motor_pwm(&mut self, pwm: [u16; 4]) {
        self.quad.set_motor_pwm(pwm);
    }

    /// Applies normalized motor commands.
    pub fn set_motor_commands(&mut self, cmds: [f64; 4]) {
        self.quad.set_motor_commands(cmds);
    }

    /// Injects a wind gust (used by disturbance-rejection experiments).
    pub fn inject_gust(&mut self, velocity: Vec3, duration: f64) {
        self.wind.inject_gust(velocity, duration);
    }

    /// Advances physics to `target` in fixed sub-steps, running crash
    /// detection at every step. Does nothing if `target` is in the past.
    pub fn advance_to(&mut self, target: SimTime) {
        let dt = self.config.physics_dt;
        let dt_s = dt.as_secs_f64();
        while self.now + dt <= target {
            let wind = self.wind.step(dt_s);
            self.quad.step(dt_s, wind);
            self.now += dt;
            self.detector
                .check(self.quad.state(), self.quad.on_ground(), self.now);
        }
    }

    /// Gathers everything the SoA batch executor needs to advance this
    /// world's physics off-line (see [`crate::batch::WorldBatch`]). The
    /// world keeps its (now stale) state until the matching
    /// [`World::restore_lane`]; callers must not touch it in between.
    pub(crate) fn extract_lane(&self) -> LaneState {
        let (state, motors, on_ground, inertia_inv) = self.quad.lane_parts();
        LaneState {
            dt: self.config.physics_dt,
            now: self.now,
            params: *self.quad.params(),
            inertia_inv: *inertia_inv,
            state: *state,
            motors: *motors,
            on_ground,
            wind: self.wind.clone(),
            detector: self.detector.clone(),
        }
    }

    /// Writes a batch-advanced lane back (the inverse of
    /// [`World::extract_lane`]).
    pub(crate) fn restore_lane(&mut self, lane: LaneState) {
        self.quad
            .restore_lane(lane.state, lane.motors, lane.on_ground);
        self.wind = lane.wind;
        self.detector = lane.detector;
        self.now = lane.now;
    }

    /// Samples the IMU at the current instant.
    pub fn sample_imu(&mut self) -> ImuSample {
        self.imu.sample(self.quad.state(), self.now)
    }

    /// Samples the barometer at the current instant.
    pub fn sample_baro(&mut self) -> BaroSample {
        self.baro.sample(self.quad.state(), self.now)
    }

    /// Samples the positioning source at the current instant.
    pub fn sample_position(&mut self) -> PositionFix {
        self.positioning.sample(self.quad.state(), self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quad::GRAVITY;

    #[test]
    fn hover_with_held_commands_stays_put_briefly() {
        let mut w = World::new(WorldConfig::default(), 7);
        w.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
        let hover = w.quad_params().hover_command();
        w.set_motor_commands([hover; 4]);
        w.advance_to(SimTime::from_millis(500));
        // Open-loop hover drifts a little under turbulence but stays close.
        assert!((w.truth().altitude() - 1.0).abs() < 0.2);
        assert!(w.crash().is_none());
    }

    #[test]
    fn advance_is_idempotent_for_past_targets() {
        let mut w = World::new(WorldConfig::default(), 7);
        w.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
        w.advance_to(SimTime::from_millis(100));
        let p = w.truth().position;
        w.advance_to(SimTime::from_millis(50));
        assert_eq!(w.truth().position, p);
    }

    #[test]
    fn motors_off_leads_to_ground_impact_crash() {
        let mut w = World::new(WorldConfig::default(), 7);
        w.start_at_hover(Vec3::new(0.0, 0.0, -2.0));
        w.set_motor_commands([0.0; 4]);
        w.advance_to(SimTime::from_secs(3));
        let crash = w.crash().expect("free fall from 2 m must crash");
        assert_eq!(crash.kind, crate::crash::CrashKind::GroundImpact);
    }

    #[test]
    fn same_seed_same_world_trajectory() {
        let run = |seed| {
            let mut w = World::new(WorldConfig::default(), seed);
            w.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
            w.set_motor_commands([w.quad_params().hover_command() * 1.01; 4]);
            w.advance_to(SimTime::from_secs(1));
            w.truth().position
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn sensors_report_plausible_hover_values() {
        let mut w = World::new(WorldConfig::default(), 11);
        w.start_at_hover(Vec3::new(0.5, -0.5, -1.0));
        let imu = w.sample_imu();
        assert!((imu.accel.z + GRAVITY).abs() < 0.5, "{:?}", imu.accel);
        let fix = w.sample_position();
        assert!((fix.position - w.truth().position).norm() < 0.05);
        let baro = w.sample_baro();
        assert!((baro.altitude - 1.0).abs() < 1.0);
    }

    #[test]
    fn gust_displaces_open_loop_hover() {
        let mut w = World::new(WorldConfig::default(), 13);
        w.start_at_hover(Vec3::new(0.0, 0.0, -2.0));
        w.set_motor_commands([w.quad_params().hover_command(); 4]);
        w.inject_gust(Vec3::new(0.0, 4.0, 0.0), 1.0);
        w.advance_to(SimTime::from_secs(2));
        assert!(w.truth().position.y > 0.3, "y {}", w.truth().position.y);
    }
}
