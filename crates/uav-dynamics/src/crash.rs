//! Crash detection.
//!
//! In the paper, "the drone crashes shortly after" a successful attack — on
//! the testbed that means a ground or net impact in the Vicon cage. The
//! detector recognizes the same three outcomes from simulated state.

use sim_core::time::{SimDuration, SimTime};

use crate::environment::FlightCage;
use crate::quad::QuadState;

/// Why the flight ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Hit the ground with excessive vertical speed.
    GroundImpact,
    /// Left the flight cage (hit a wall or the net).
    CageImpact,
    /// Attitude beyond recoverable limits for a sustained interval.
    LossOfControl,
}

impl std::fmt::Display for CrashKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashKind::GroundImpact => write!(f, "ground impact"),
            CrashKind::CageImpact => write!(f, "flight cage impact"),
            CrashKind::LossOfControl => write!(f, "loss of control"),
        }
    }
}

/// A detected crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// What happened.
    pub kind: CrashKind,
    /// When it was detected.
    pub time: SimTime,
}

/// Crash detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashConfig {
    /// Vertical speed above which ground contact is an impact, m/s.
    pub max_touchdown_speed: f64,
    /// Roll/pitch magnitude considered unrecoverable, rad.
    pub max_tilt: f64,
    /// How long the tilt must persist to declare loss of control.
    pub tilt_persistence: SimDuration,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            max_touchdown_speed: 1.0,
            max_tilt: 75f64.to_radians(),
            tilt_persistence: SimDuration::from_millis(300),
        }
    }
}

/// Stateful crash detector; feed it every physics step.
///
/// # Examples
///
/// ```
/// use uav_dynamics::crash::{CrashDetector, CrashConfig, CrashKind};
/// use uav_dynamics::environment::FlightCage;
/// use uav_dynamics::math::Vec3;
/// use uav_dynamics::quad::QuadState;
/// use sim_core::time::SimTime;
///
/// let mut det = CrashDetector::new(CrashConfig::default(), FlightCage::default());
/// let state = QuadState { position: Vec3::new(20.0, 0.0, -1.0), ..Default::default() };
/// let crash = det.check(&state, false, SimTime::from_secs(5)).unwrap();
/// assert_eq!(crash.kind, CrashKind::CageImpact);
/// ```
#[derive(Debug, Clone)]
pub struct CrashDetector {
    config: CrashConfig,
    cage: FlightCage,
    crash: Option<Crash>,
    tilt_since: Option<SimTime>,
    was_airborne: bool,
}

impl CrashDetector {
    /// Creates a detector for the given cage.
    pub fn new(config: CrashConfig, cage: FlightCage) -> Self {
        CrashDetector {
            config,
            cage,
            crash: None,
            tilt_since: None,
            was_airborne: false,
        }
    }

    /// The first crash detected, if any.
    pub fn crash(&self) -> Option<Crash> {
        self.crash
    }

    /// Examines the state at `time`; returns the crash when first detected.
    /// Once a crash is latched, further calls keep returning it.
    pub fn check(&mut self, state: &QuadState, on_ground: bool, time: SimTime) -> Option<Crash> {
        if self.crash.is_some() {
            return self.crash;
        }

        if !self.cage.contains(state.position) {
            return self.latch(CrashKind::CageImpact, time);
        }

        if on_ground {
            // `velocity.z` was zeroed by the ground clamp, so judge by the
            // airborne flag transition plus the pre-contact descent rate the
            // caller supplies through the state *before* clamping; a robust
            // proxy is the tilt at contact and the recorded acceleration.
            if self.was_airborne {
                // Touchdown this step: an impact if still carrying tilt.
                let (roll, pitch, _) = state.euler();
                if roll.abs() > 0.35 || pitch.abs() > 0.35 {
                    return self.latch(CrashKind::GroundImpact, time);
                }
            }
        } else if state.velocity.z > self.config.max_touchdown_speed && state.position.z > -0.15 {
            // Descending fast right above the ground: impact is unavoidable.
            return self.latch(CrashKind::GroundImpact, time);
        }
        self.was_airborne = !on_ground;

        let (roll, pitch, _) = state.euler();
        if roll.abs() > self.config.max_tilt || pitch.abs() > self.config.max_tilt {
            match self.tilt_since {
                None => self.tilt_since = Some(time),
                Some(since) => {
                    if time.saturating_since(since) >= self.config.tilt_persistence {
                        return self.latch(CrashKind::LossOfControl, time);
                    }
                }
            }
        } else {
            self.tilt_since = None;
        }

        None
    }

    fn latch(&mut self, kind: CrashKind, time: SimTime) -> Option<Crash> {
        self.crash = Some(Crash { kind, time });
        self.crash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{Quat, Vec3};

    fn detector() -> CrashDetector {
        CrashDetector::new(CrashConfig::default(), FlightCage::default())
    }

    fn hover_state() -> QuadState {
        QuadState {
            position: Vec3::new(0.0, 0.0, -1.0),
            ..QuadState::default()
        }
    }

    #[test]
    fn stable_hover_never_crashes() {
        let mut det = detector();
        for i in 0..1000 {
            assert!(det
                .check(&hover_state(), false, SimTime::from_millis(i * 10))
                .is_none());
        }
    }

    #[test]
    fn leaving_cage_is_a_crash() {
        let mut det = detector();
        let state = QuadState {
            position: Vec3::new(0.0, 6.0, -1.0),
            ..QuadState::default()
        };
        let c = det.check(&state, false, SimTime::from_secs(3)).unwrap();
        assert_eq!(c.kind, CrashKind::CageImpact);
    }

    #[test]
    fn fast_descent_near_ground_is_an_impact() {
        let mut det = detector();
        let state = QuadState {
            position: Vec3::new(0.0, 0.0, -0.1),
            velocity: Vec3::new(0.0, 0.0, 3.0),
            ..QuadState::default()
        };
        let c = det.check(&state, false, SimTime::from_secs(1)).unwrap();
        assert_eq!(c.kind, CrashKind::GroundImpact);
    }

    #[test]
    fn tilted_touchdown_is_an_impact() {
        let mut det = detector();
        // Airborne first …
        det.check(&hover_state(), false, SimTime::from_secs(1));
        // … then touching down while rolled 30°.
        let state = QuadState {
            attitude: Quat::from_euler(0.5, 0.0, 0.0),
            ..QuadState::default()
        };
        let c = det.check(&state, true, SimTime::from_secs(2)).unwrap();
        assert_eq!(c.kind, CrashKind::GroundImpact);
    }

    #[test]
    fn gentle_landing_is_not_a_crash() {
        let mut det = detector();
        det.check(&hover_state(), false, SimTime::from_secs(1));
        let level = QuadState::default();
        assert!(det.check(&level, true, SimTime::from_secs(2)).is_none());
    }

    #[test]
    fn sustained_extreme_tilt_is_loss_of_control() {
        let mut det = detector();
        let state = QuadState {
            position: Vec3::new(0.0, 0.0, -2.0),
            attitude: Quat::from_euler(1.5, 0.0, 0.0),
            ..QuadState::default()
        };
        assert!(det.check(&state, false, SimTime::from_millis(0)).is_none());
        assert!(det
            .check(&state, false, SimTime::from_millis(100))
            .is_none());
        let c = det.check(&state, false, SimTime::from_millis(350)).unwrap();
        assert_eq!(c.kind, CrashKind::LossOfControl);
    }

    #[test]
    fn brief_tilt_spike_is_forgiven() {
        let mut det = detector();
        let tilted = QuadState {
            position: Vec3::new(0.0, 0.0, -2.0),
            attitude: Quat::from_euler(1.5, 0.0, 0.0),
            ..QuadState::default()
        };
        assert!(det.check(&tilted, false, SimTime::from_millis(0)).is_none());
        // Recovers before the persistence window elapses.
        assert!(det
            .check(&hover_state(), false, SimTime::from_millis(200))
            .is_none());
        assert!(det
            .check(&tilted, false, SimTime::from_millis(400))
            .is_none());
        assert!(det
            .check(&hover_state(), false, SimTime::from_millis(600))
            .is_none());
    }

    #[test]
    fn crash_latches() {
        let mut det = detector();
        let out = QuadState {
            position: Vec3::new(9.0, 0.0, -1.0),
            ..QuadState::default()
        };
        let first = det.check(&out, false, SimTime::from_secs(1)).unwrap();
        // Later healthy states still report the original crash.
        let again = det
            .check(&hover_state(), false, SimTime::from_secs(5))
            .unwrap();
        assert_eq!(first, again);
    }
}
