//! Quadrotor rigid-body dynamics.
//!
//! A Quad-X airframe in the PX4 numbering: motor 0 front-right (CCW),
//! motor 1 rear-left (CCW), motor 2 front-left (CW), motor 3 rear-right
//! (CW). Frames are NED world / FRD body (see [`crate::math`]).

use crate::math::{Mat3, Quat, Vec3};
use crate::motor::Motor;

/// Standard gravity, m/s².
pub const GRAVITY: f64 = 9.80665;

/// Physical parameters of the airframe.
///
/// Defaults approximate the paper's RPi3B + Navio2 prototype: a ~1.2 kg
/// 250–450 mm class quadcopter with a thrust-to-weight ratio near 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadParams {
    /// Vehicle mass, kg.
    pub mass: f64,
    /// Body-frame inertia tensor (diagonal), kg·m².
    pub inertia: Mat3,
    /// Distance from the center of mass to each motor, m.
    pub arm_length: f64,
    /// Maximum thrust of one motor, N.
    pub motor_max_thrust: f64,
    /// Motor thrust time constant, s.
    pub motor_time_constant: f64,
    /// Reaction-torque per newton of thrust, m (yaw authority).
    pub torque_coeff: f64,
    /// Linear drag coefficient, N per m/s of airspeed.
    pub linear_drag: f64,
    /// Rotational damping, N·m per rad/s.
    pub angular_drag: f64,
}

impl Default for QuadParams {
    fn default() -> Self {
        QuadParams {
            mass: 1.2,
            inertia: Mat3::diag(0.0115, 0.0115, 0.0218),
            arm_length: 0.16,
            motor_max_thrust: 6.0,
            motor_time_constant: 0.02,
            torque_coeff: 0.016,
            linear_drag: 0.25,
            angular_drag: 0.002,
        }
    }
}

impl QuadParams {
    /// Total thrust needed to hover, N.
    pub fn hover_thrust(&self) -> f64 {
        self.mass * GRAVITY
    }

    /// Normalized per-motor command that hovers the vehicle.
    pub fn hover_command(&self) -> f64 {
        self.hover_thrust() / (4.0 * self.motor_max_thrust)
    }
}

/// Instantaneous kinematic state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuadState {
    /// Position in NED world frame, m.
    pub position: Vec3,
    /// Velocity in NED world frame, m/s.
    pub velocity: Vec3,
    /// Attitude: rotation body → world.
    pub attitude: Quat,
    /// Body-frame angular velocity, rad/s.
    pub angular_velocity: Vec3,
    /// World-frame *specific force* (all non-gravitational forces per unit
    /// mass), m/s². This is what an ideal accelerometer measures: at hover
    /// it is `(0, 0, −g)`; in free fall it is zero.
    pub acceleration: Vec3,
}

impl QuadState {
    /// Euler angles `(roll, pitch, yaw)` of the current attitude, rad.
    pub fn euler(&self) -> (f64, f64, f64) {
        self.attitude.to_euler()
    }

    /// Altitude above the NED origin, m (positive up).
    pub fn altitude(&self) -> f64 {
        -self.position.z
    }
}

/// The quadrotor plant: parameters, state, and four motors.
///
/// # Examples
///
/// ```
/// use uav_dynamics::quad::{Quadrotor, QuadParams};
///
/// let mut quad = Quadrotor::new(QuadParams::default());
/// quad.start_at_hover(uav_dynamics::math::Vec3::new(0.0, 0.0, -1.0));
/// quad.set_motor_commands([quad.params().hover_command(); 4]);
/// for _ in 0..1000 {
///     quad.step(0.001, uav_dynamics::math::Vec3::ZERO);
/// }
/// // Hover command with no disturbance keeps altitude within a centimetre.
/// assert!((quad.state().altitude() - 1.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Quadrotor {
    params: QuadParams,
    state: QuadState,
    motors: [Motor; 4],
    inertia_inv: Mat3,
    on_ground: bool,
}

/// Motor lever arms for Quad-X in the FRD body frame: (x forward, y right).
/// Index order matches PX4: FR, RL, FL, RR.
const MOTOR_POS_SIGNS: [(f64, f64); 4] = [(1.0, 1.0), (-1.0, -1.0), (1.0, -1.0), (-1.0, 1.0)];
/// Spin direction per motor: +1 = CCW (positive yaw reaction in FRD).
const MOTOR_SPIN: [f64; 4] = [1.0, 1.0, -1.0, -1.0];

impl Quadrotor {
    /// Creates a quadrotor at rest at the NED origin.
    pub fn new(params: QuadParams) -> Self {
        let motor = Motor::new(params.motor_max_thrust, params.motor_time_constant);
        Quadrotor {
            inertia_inv: params.inertia.diag_inverse(),
            params,
            state: QuadState::default(),
            motors: [motor; 4],
            on_ground: true,
        }
    }

    /// Airframe parameters.
    pub fn params(&self) -> &QuadParams {
        &self.params
    }

    /// Current state.
    pub fn state(&self) -> &QuadState {
        &self.state
    }

    /// `true` while the vehicle is resting on the ground plane.
    pub fn on_ground(&self) -> bool {
        self.on_ground
    }

    /// Current thrust of each motor, N.
    pub fn motor_thrusts(&self) -> [f64; 4] {
        [
            self.motors[0].thrust(),
            self.motors[1].thrust(),
            self.motors[2].thrust(),
            self.motors[3].thrust(),
        ]
    }

    /// Teleports the vehicle to a hover at `position` with motors pre-spun
    /// to hover thrust — the initial condition of the paper's experiments
    /// (trajectories start with the drone already holding position).
    pub fn start_at_hover(&mut self, position: Vec3) {
        self.state = QuadState {
            position,
            // Hovering: thrust exactly cancels gravity.
            acceleration: Vec3::new(0.0, 0.0, -GRAVITY),
            ..QuadState::default()
        };
        let hover = self.params.hover_thrust() / 4.0;
        for m in &mut self.motors {
            m.set_thrust_state(hover);
            m.set_command(self.params.hover_command());
        }
        self.on_ground = position.z >= 0.0;
    }

    /// Applies normalized thrust commands (each clamped to `[0, 1]`).
    pub fn set_motor_commands(&mut self, cmds: [f64; 4]) {
        for (m, c) in self.motors.iter_mut().zip(cmds) {
            m.set_command(c);
        }
    }

    /// Applies PWM commands (1000–2000 µs per motor).
    pub fn set_motor_pwm(&mut self, pwm: [u16; 4]) {
        for (m, p) in self.motors.iter_mut().zip(pwm) {
            m.set_pwm(p);
        }
    }

    /// Advances the simulation by `dt` seconds under `wind` (world-frame
    /// air velocity, m/s).
    ///
    /// Semi-implicit Euler at the caller's rate (≥ 500 Hz recommended).
    pub fn step(&mut self, dt: f64, wind: Vec3) {
        Self::step_kernel(
            &self.params,
            &self.inertia_inv,
            &mut self.state,
            &mut self.motors,
            &mut self.on_ground,
            dt,
            wind,
        );
    }

    /// The integrator kernel behind [`Quadrotor::step`], operating on
    /// borrowed state so the SoA batch executor
    /// ([`crate::batch::WorldBatch`]) can run the *same* instruction
    /// sequence over contiguous per-shard lanes. Both entry points share
    /// this one body, which is what makes batched physics bit-identical
    /// to per-world stepping.
    pub(crate) fn step_kernel(
        params: &QuadParams,
        inertia_inv: &Mat3,
        state: &mut QuadState,
        motors: &mut [Motor; 4],
        on_ground: &mut bool,
        dt: f64,
        wind: Vec3,
    ) {
        for m in motors.iter_mut() {
            m.step(dt);
        }
        let thrusts = [
            motors[0].thrust(),
            motors[1].thrust(),
            motors[2].thrust(),
            motors[3].thrust(),
        ];
        let total_thrust: f64 = thrusts.iter().sum();

        // Torques from motor geometry (FRD: thrust acts along -z body).
        let d = params.arm_length / std::f64::consts::SQRT_2;
        let mut torque = Vec3::ZERO;
        for i in 0..4 {
            let (sx, sy) = MOTOR_POS_SIGNS[i];
            let (x, y) = (sx * d, sy * d);
            torque.x += -y * thrusts[i];
            torque.y += x * thrusts[i];
            torque.z += MOTOR_SPIN[i] * params.torque_coeff * thrusts[i];
        }
        torque -= state.angular_velocity * params.angular_drag;

        // Angular dynamics: ω̇ = I⁻¹(τ − ω × Iω).
        let i_omega = params.inertia.mul_vec(state.angular_velocity);
        let omega_dot = inertia_inv.mul_vec(torque - state.angular_velocity.cross(i_omega));
        state.angular_velocity += omega_dot * dt;
        state.attitude = state.attitude.integrate(state.angular_velocity, dt);

        // Linear dynamics.
        let thrust_world = state.attitude.rotate(Vec3::new(0.0, 0.0, -total_thrust));
        let airspeed = state.velocity - wind;
        let drag = -airspeed * params.linear_drag;
        let accel = Vec3::new(0.0, 0.0, GRAVITY) + (thrust_world + drag) / params.mass;
        state.acceleration = accel - Vec3::new(0.0, 0.0, GRAVITY);

        state.velocity += accel * dt;
        state.position += state.velocity * dt;

        // Ground plane at z = 0 (NED: positive z is below origin).
        if state.position.z >= 0.0 {
            state.position.z = 0.0;
            if state.velocity.z > 0.0 {
                state.velocity = Vec3::ZERO;
                state.angular_velocity = Vec3::ZERO;
            }
            *on_ground = true;
            // Resting: the normal force supplies one g of specific force.
            state.acceleration = Vec3::new(0.0, 0.0, -GRAVITY);
        } else {
            *on_ground = false;
        }
    }

    /// The batch executor's gather view: kinematic state, motor bank,
    /// ground flag and the cached inverse inertia, in one read.
    pub(crate) fn lane_parts(&self) -> (&QuadState, &[Motor; 4], bool, &Mat3) {
        (&self.state, &self.motors, self.on_ground, &self.inertia_inv)
    }

    /// The batch executor's scatter: writes an advanced lane back.
    pub(crate) fn restore_lane(&mut self, state: QuadState, motors: [Motor; 4], on_ground: bool) {
        self.state = state;
        self.motors = motors;
        self.on_ground = on_ground;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fall_matches_closed_form() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -100.0));
        for m in q.motors.iter_mut() {
            m.set_thrust_state(0.0);
            m.set_command(0.0);
        }
        let dt = 0.001;
        let t = 1.0;
        // Drag-free fall would travel g t²/2 = 4.903 m; linear drag makes it
        // slightly less. Integrate and compare with the analytic solution of
        // v̇ = g − (c/m)v.
        for _ in 0..1000 {
            q.step(dt, Vec3::ZERO);
        }
        let c = q.params.linear_drag / q.params.mass;
        let v_analytic = GRAVITY / c * (1.0 - (-c * t).exp());
        assert!((q.state().velocity.z - v_analytic).abs() < 0.01);
    }

    #[test]
    fn hover_command_holds_altitude() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
        q.set_motor_commands([q.params().hover_command(); 4]);
        for _ in 0..5000 {
            q.step(0.001, Vec3::ZERO);
        }
        assert!((q.state().altitude() - 1.0).abs() < 0.02);
        assert!(q.state().angular_velocity.norm() < 1e-9);
    }

    #[test]
    fn differential_thrust_rolls_the_right_way() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -5.0));
        let h = q.params().hover_command();
        // More thrust on the left motors (RL=1, FL=2) rolls right (positive).
        q.set_motor_commands([h - 0.05, h + 0.05, h + 0.05, h - 0.05]);
        for _ in 0..100 {
            q.step(0.001, Vec3::ZERO);
        }
        let (roll, pitch, _) = q.state().euler();
        assert!(roll > 1e-4, "roll {roll}");
        assert!(pitch.abs() < roll / 10.0, "pitch {pitch}");
    }

    #[test]
    fn differential_thrust_pitches_the_right_way() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -5.0));
        let h = q.params().hover_command();
        // More thrust on front motors (FR=0, FL=2) pitches up (positive).
        q.set_motor_commands([h + 0.05, h - 0.05, h + 0.05, h - 0.05]);
        for _ in 0..100 {
            q.step(0.001, Vec3::ZERO);
        }
        let (roll, pitch, _) = q.state().euler();
        assert!(pitch > 1e-4, "pitch {pitch}");
        assert!(roll.abs() < pitch / 10.0, "roll {roll}");
    }

    #[test]
    fn ccw_motor_surplus_yaws_positive() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -5.0));
        let h = q.params().hover_command();
        // More thrust on CCW motors (0, 1) -> positive yaw reaction.
        q.set_motor_commands([h + 0.05, h + 0.05, h - 0.05, h - 0.05]);
        for _ in 0..200 {
            q.step(0.001, Vec3::ZERO);
        }
        let (_, _, yaw) = q.state().euler();
        assert!(yaw > 1e-5, "yaw {yaw}");
    }

    #[test]
    fn tilted_thrust_accelerates_horizontally() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -5.0));
        // Pitch the vehicle nose-down 0.1 rad and hold hover thrust: it
        // should accelerate forward (+x).
        q.state.attitude = Quat::from_euler(0.0, -0.1, 0.0);
        q.set_motor_commands([q.params().hover_command() / (0.1f64).cos().powi(2); 4]);
        for _ in 0..500 {
            q.step(0.001, Vec3::ZERO);
        }
        assert!(q.state().velocity.x > 0.3, "vx {}", q.state().velocity.x);
    }

    #[test]
    fn wind_pushes_the_vehicle() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -5.0));
        q.set_motor_commands([q.params().hover_command(); 4]);
        for _ in 0..2000 {
            q.step(0.001, Vec3::new(0.0, 3.0, 0.0));
        }
        assert!(q.state().velocity.y > 0.5, "vy {}", q.state().velocity.y);
    }

    #[test]
    fn ground_contact_stops_descent() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -0.2));
        q.set_motor_commands([0.0; 4]);
        for _ in 0..2000 {
            q.step(0.001, Vec3::ZERO);
        }
        assert!(q.on_ground());
        assert_eq!(q.state().position.z, 0.0);
        assert_eq!(q.state().velocity, Vec3::ZERO);
    }

    #[test]
    fn state_stays_finite_under_full_throttle_asymmetry() {
        let mut q = Quadrotor::new(QuadParams::default());
        q.start_at_hover(Vec3::new(0.0, 0.0, -50.0));
        q.set_motor_commands([1.0, 0.0, 1.0, 0.0]);
        for _ in 0..5000 {
            q.step(0.001, Vec3::ZERO);
        }
        assert!(q.state().position.is_finite());
        assert!(q.state().attitude.is_finite());
        assert!((q.state().attitude.norm() - 1.0).abs() < 1e-9);
    }
}
