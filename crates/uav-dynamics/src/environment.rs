//! Flight environment: wind, gusts, and the indoor flight cage.
//!
//! The paper flies inside a Vicon-equipped lab. Indoors there is little mean
//! wind, but there *is* turbulence from the vehicle's own downwash and HVAC;
//! we model it as an Ornstein–Uhlenbeck process so the controllers always
//! have a disturbance to reject. Experiments can also script discrete gusts.

use sim_core::rng::Rng;

use crate::math::Vec3;

/// Configuration of the wind model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindConfig {
    /// Mean wind vector, m/s (≈ 0 indoors).
    pub mean: Vec3,
    /// Turbulence standard deviation per axis, m/s.
    pub turbulence_std: f64,
    /// Turbulence correlation time, s.
    pub correlation_time: f64,
}

impl Default for WindConfig {
    fn default() -> Self {
        WindConfig {
            mean: Vec3::ZERO,
            turbulence_std: 0.12,
            correlation_time: 1.5,
        }
    }
}

/// Ornstein–Uhlenbeck wind process with scripted gust support.
///
/// # Examples
///
/// ```
/// use uav_dynamics::environment::{Wind, WindConfig};
/// use sim_core::rng::Rng;
///
/// let mut wind = Wind::new(WindConfig::default(), Rng::derive(1, "wind"));
/// let w = wind.step(0.002);
/// assert!(w.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Wind {
    config: WindConfig,
    rng: Rng,
    state: Vec3,
    gust: Vec3,
    gust_remaining: f64,
    /// Memo of the OU discretization coefficients for the last `dt`
    /// (fixed-step integration makes `exp`/`sqrt` per step redundant).
    ou_memo: Option<(f64, f64, f64)>,
}

impl Wind {
    /// Creates the wind process.
    pub fn new(config: WindConfig, rng: Rng) -> Self {
        Wind {
            config,
            rng,
            state: config.mean,
            gust: Vec3::ZERO,
            gust_remaining: 0.0,
            ou_memo: None,
        }
    }

    /// A dead-calm environment (for closed-form physics tests).
    pub fn calm() -> Self {
        Wind::new(
            WindConfig {
                mean: Vec3::ZERO,
                turbulence_std: 0.0,
                correlation_time: 1.0,
            },
            Rng::seed_from(0),
        )
    }

    /// Injects a gust of `velocity` lasting `duration` seconds.
    pub fn inject_gust(&mut self, velocity: Vec3, duration: f64) {
        self.gust = velocity;
        self.gust_remaining = duration.max(0.0);
    }

    /// Advances the process and returns the current wind vector.
    pub fn step(&mut self, dt: f64) -> Vec3 {
        let c = &self.config;
        if c.turbulence_std > 0.0 {
            // Exact OU discretization: x' = μ + (x−μ)e^{−dt/τ} + σ√(1−e^{−2dt/τ}) ξ.
            // The coefficients depend only on `dt`, which fixed-step
            // integration holds constant: memoize them instead of paying
            // `exp` + `sqrt` every step.
            let (decay, diffusion) = match self.ou_memo {
                Some((memo_dt, decay, diffusion)) if memo_dt == dt => (decay, diffusion),
                _ => {
                    let decay = (-dt / c.correlation_time).exp();
                    let diffusion = c.turbulence_std * (1.0 - decay * decay).sqrt();
                    self.ou_memo = Some((dt, decay, diffusion));
                    (decay, diffusion)
                }
            };
            let noise = Vec3::new(
                self.rng.standard_normal(),
                self.rng.standard_normal(),
                self.rng.standard_normal() * 0.3, // vertical turbulence is weaker
            );
            self.state = c.mean + (self.state - c.mean) * decay + noise * diffusion;
        } else {
            self.state = c.mean;
        }

        let mut total = self.state;
        if self.gust_remaining > 0.0 {
            total += self.gust;
            self.gust_remaining -= dt;
        }
        total
    }

    /// The current wind without advancing the process.
    pub fn current(&self) -> Vec3 {
        if self.gust_remaining > 0.0 {
            self.state + self.gust
        } else {
            self.state
        }
    }
}

/// The indoor flight volume. Leaving it means hitting a wall or the net —
/// a crash in every experiment of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightCage {
    /// Half-extent in x (north), m.
    pub half_x: f64,
    /// Half-extent in y (east), m.
    pub half_y: f64,
    /// Ceiling height, m.
    pub ceiling: f64,
}

impl Default for FlightCage {
    fn default() -> Self {
        // A motion-capture lab volume (~6 × 6 × 3.5 m).
        FlightCage {
            half_x: 3.0,
            half_y: 3.0,
            ceiling: 3.5,
        }
    }
}

impl FlightCage {
    /// `true` if `position` (NED) is inside the cage.
    ///
    /// # Examples
    ///
    /// ```
    /// use uav_dynamics::environment::FlightCage;
    /// use uav_dynamics::math::Vec3;
    ///
    /// let cage = FlightCage::default();
    /// assert!(cage.contains(Vec3::new(0.0, 0.0, -1.0)));
    /// assert!(!cage.contains(Vec3::new(9.0, 0.0, -1.0)));
    /// ```
    pub fn contains(&self, position: Vec3) -> bool {
        position.x.abs() <= self.half_x
            && position.y.abs() <= self.half_y
            && -position.z <= self.ceiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::series::Stats;

    #[test]
    fn calm_wind_is_zero() {
        let mut w = Wind::calm();
        for _ in 0..100 {
            assert_eq!(w.step(0.01), Vec3::ZERO);
        }
    }

    #[test]
    fn turbulence_statistics_match_config() {
        let cfg = WindConfig {
            mean: Vec3::new(1.0, 0.0, 0.0),
            turbulence_std: 0.5,
            correlation_time: 0.2,
        };
        let mut w = Wind::new(cfg, Rng::derive(42, "wind-test"));
        let mut xs = Vec::new();
        // Let the process mix, then sample.
        for _ in 0..1000 {
            w.step(0.01);
        }
        for _ in 0..50_000 {
            xs.push(w.step(0.01).x);
        }
        let s = Stats::of(&xs);
        assert!((s.mean - 1.0).abs() < 0.05, "mean {}", s.mean);
        assert!((s.std_dev - 0.5).abs() < 0.1, "std {}", s.std_dev);
    }

    #[test]
    fn gust_applies_for_duration_only() {
        let mut w = Wind::calm();
        w.inject_gust(Vec3::new(2.0, 0.0, 0.0), 0.5);
        let during = w.step(0.01);
        assert_eq!(during.x, 2.0);
        for _ in 0..60 {
            w.step(0.01);
        }
        assert_eq!(w.step(0.01), Vec3::ZERO);
    }

    #[test]
    fn wind_is_deterministic_per_seed() {
        let cfg = WindConfig::default();
        let mut a = Wind::new(cfg, Rng::derive(7, "w"));
        let mut b = Wind::new(cfg, Rng::derive(7, "w"));
        for _ in 0..100 {
            assert_eq!(a.step(0.002), b.step(0.002));
        }
    }

    #[test]
    fn cage_boundaries() {
        let cage = FlightCage {
            half_x: 2.0,
            half_y: 3.0,
            ceiling: 2.5,
        };
        assert!(cage.contains(Vec3::new(1.9, -2.9, -2.4)));
        assert!(!cage.contains(Vec3::new(2.1, 0.0, -1.0)));
        assert!(!cage.contains(Vec3::new(0.0, 3.1, -1.0)));
        assert!(!cage.contains(Vec3::new(0.0, 0.0, -2.6)));
        // On the ground inside the footprint is "inside".
        assert!(cage.contains(Vec3::ZERO));
    }
}
