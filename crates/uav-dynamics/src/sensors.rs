//! Sensor models matching the Navio2 hat: IMU (gyro + accel + mag),
//! barometer, and a Vicon-style indoor positioning source forwarded as GPS,
//! exactly as the paper's testbed does ("a Vicon motion capture system is
//! used to provide indoor positioning").
//!
//! Each sensor owns its noise stream and bias state; samples are taken when
//! the HCE sensor-driver *task* runs, so scheduling delay directly becomes
//! measurement latency.

use sim_core::rng::Rng;
use sim_core::time::SimTime;

use crate::math::Vec3;
use crate::quad::QuadState;

/// One inertial sample in the FRD body frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImuSample {
    /// Sample time.
    pub time: SimTime,
    /// Angular rate, rad/s.
    pub gyro: Vec3,
    /// Specific force, m/s².
    pub accel: Vec3,
    /// Magnetic field, gauss.
    pub mag: Vec3,
}

/// IMU noise/bias configuration (MPU9250-class defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuConfig {
    /// Gyro white-noise standard deviation, rad/s.
    pub gyro_noise_std: f64,
    /// Gyro bias magnitude drawn at startup, rad/s.
    pub gyro_bias_std: f64,
    /// Accelerometer white-noise standard deviation, m/s².
    pub accel_noise_std: f64,
    /// Accelerometer bias magnitude drawn at startup, m/s².
    pub accel_bias_std: f64,
    /// Magnetometer white-noise standard deviation, gauss.
    pub mag_noise_std: f64,
}

impl Default for ImuConfig {
    fn default() -> Self {
        ImuConfig {
            gyro_noise_std: 0.002,
            gyro_bias_std: 0.005,
            accel_noise_std: 0.05,
            accel_bias_std: 0.05,
            mag_noise_std: 0.005,
        }
    }
}

/// Simulated IMU.
#[derive(Debug, Clone)]
pub struct Imu {
    config: ImuConfig,
    rng: Rng,
    gyro_bias: Vec3,
    accel_bias: Vec3,
    /// Earth magnetic field in the world frame, gauss (NED components).
    field: Vec3,
}

impl Imu {
    /// Creates an IMU, drawing fixed run-life biases from `rng`.
    pub fn new(config: ImuConfig, mut rng: Rng) -> Self {
        let gyro_bias = Vec3::new(
            rng.normal(0.0, config.gyro_bias_std),
            rng.normal(0.0, config.gyro_bias_std),
            rng.normal(0.0, config.gyro_bias_std),
        );
        let accel_bias = Vec3::new(
            rng.normal(0.0, config.accel_bias_std),
            rng.normal(0.0, config.accel_bias_std),
            rng.normal(0.0, config.accel_bias_std),
        );
        Imu {
            config,
            rng,
            gyro_bias,
            accel_bias,
            field: Vec3::new(0.21, 0.0, 0.42), // mid-latitude field, gauss
        }
    }

    /// Samples the IMU given the true vehicle state.
    pub fn sample(&mut self, state: &QuadState, time: SimTime) -> ImuSample {
        let c = &self.config;
        let noise3 = |rng: &mut Rng, std: f64| {
            Vec3::new(
                rng.normal(0.0, std),
                rng.normal(0.0, std),
                rng.normal(0.0, std),
            )
        };

        let gyro =
            state.angular_velocity + self.gyro_bias + noise3(&mut self.rng, c.gyro_noise_std);

        // `state.acceleration` is the world-frame specific force (all
        // non-gravitational forces per unit mass) — exactly what an
        // accelerometer measures once rotated into the body frame.
        let f_body = state.attitude.rotate_inverse(state.acceleration);
        let accel = f_body + self.accel_bias + noise3(&mut self.rng, c.accel_noise_std);

        let mag =
            state.attitude.rotate_inverse(self.field) + noise3(&mut self.rng, c.mag_noise_std);

        ImuSample {
            time,
            gyro,
            accel,
            mag,
        }
    }
}

/// One barometer sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaroSample {
    /// Sample time.
    pub time: SimTime,
    /// Absolute pressure, hPa.
    pub pressure_hpa: f64,
    /// Temperature, °C.
    pub temperature_c: f64,
    /// Pressure altitude above the origin, m.
    pub altitude: f64,
}

/// Barometer noise configuration (MS5611-class defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaroConfig {
    /// Altitude white-noise standard deviation, m.
    pub noise_std: f64,
    /// Slow drift standard deviation, m, with ~30 s correlation.
    pub drift_std: f64,
}

impl Default for BaroConfig {
    fn default() -> Self {
        BaroConfig {
            noise_std: 0.08,
            drift_std: 0.3,
        }
    }
}

/// Simulated barometer.
#[derive(Debug, Clone)]
pub struct Baro {
    config: BaroConfig,
    rng: Rng,
    drift: f64,
    last_time: Option<SimTime>,
}

impl Baro {
    /// Creates a barometer.
    pub fn new(config: BaroConfig, rng: Rng) -> Self {
        Baro {
            config,
            rng,
            drift: 0.0,
            last_time: None,
        }
    }

    /// Samples the barometer given the true state.
    pub fn sample(&mut self, state: &QuadState, time: SimTime) -> BaroSample {
        let dt = self
            .last_time
            .map(|t| time.saturating_since(t).as_secs_f64())
            .unwrap_or(0.0);
        self.last_time = Some(time);

        // OU drift with 30 s correlation time.
        let tau = 30.0;
        let decay = (-dt / tau).exp();
        let diffusion = self.config.drift_std * (1.0 - decay * decay).sqrt();
        self.drift = self.drift * decay + self.rng.normal(0.0, diffusion.max(0.0));

        let alt = state.altitude() + self.drift + self.rng.normal(0.0, self.config.noise_std);
        // International standard atmosphere around sea level.
        let pressure = 1013.25 * (1.0 - 2.25577e-5 * alt).powf(5.25588);
        BaroSample {
            time,
            pressure_hpa: pressure,
            temperature_c: 25.0,
            altitude: alt,
        }
    }
}

/// One position fix (from the Vicon system, forwarded as GPS).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PositionFix {
    /// Sample time.
    pub time: SimTime,
    /// Position in the local NED frame, m.
    pub position: Vec3,
    /// Velocity in the local NED frame, m/s.
    pub velocity: Vec3,
    /// Horizontal accuracy estimate, m.
    pub h_accuracy: f64,
    /// Vertical accuracy estimate, m.
    pub v_accuracy: f64,
}

/// Positioning-source configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositioningConfig {
    /// Position white-noise standard deviation, m
    /// (millimetres for Vicon, decimetres for real GPS).
    pub position_noise_std: f64,
    /// Velocity white-noise standard deviation, m/s.
    pub velocity_noise_std: f64,
}

impl PositioningConfig {
    /// Vicon motion-capture accuracy (the paper's indoor setup).
    pub fn vicon() -> Self {
        PositioningConfig {
            position_noise_std: 0.002,
            velocity_noise_std: 0.01,
        }
    }

    /// Consumer GNSS accuracy (for outdoor what-if runs).
    pub fn gps() -> Self {
        PositioningConfig {
            position_noise_std: 0.4,
            velocity_noise_std: 0.1,
        }
    }
}

/// Simulated positioning source.
#[derive(Debug, Clone)]
pub struct Positioning {
    config: PositioningConfig,
    rng: Rng,
}

impl Positioning {
    /// Creates a positioning source.
    pub fn new(config: PositioningConfig, rng: Rng) -> Self {
        Positioning { config, rng }
    }

    /// Samples a fix from the true state.
    pub fn sample(&mut self, state: &QuadState, time: SimTime) -> PositionFix {
        let c = &self.config;
        let p_noise = Vec3::new(
            self.rng.normal(0.0, c.position_noise_std),
            self.rng.normal(0.0, c.position_noise_std),
            self.rng.normal(0.0, c.position_noise_std),
        );
        let v_noise = Vec3::new(
            self.rng.normal(0.0, c.velocity_noise_std),
            self.rng.normal(0.0, c.velocity_noise_std),
            self.rng.normal(0.0, c.velocity_noise_std),
        );
        PositionFix {
            time,
            position: state.position + p_noise,
            velocity: state.velocity + v_noise,
            h_accuracy: c.position_noise_std * 2.0,
            v_accuracy: c.position_noise_std * 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Quat;
    use crate::quad::GRAVITY;
    use sim_core::series::Stats;

    /// A vehicle at rest: the ground's normal force gives a specific force
    /// of one g pointing up (−z in NED).
    fn level_state() -> QuadState {
        QuadState {
            acceleration: Vec3::new(0.0, 0.0, -GRAVITY),
            ..QuadState::default()
        }
    }

    #[test]
    fn imu_at_rest_measures_gravity_up() {
        let mut imu = Imu::new(
            ImuConfig {
                gyro_noise_std: 0.0,
                gyro_bias_std: 0.0,
                accel_noise_std: 0.0,
                accel_bias_std: 0.0,
                mag_noise_std: 0.0,
            },
            Rng::seed_from(1),
        );
        let s = imu.sample(&level_state(), SimTime::ZERO);
        // At rest, specific force points opposite gravity: (0,0,-g) in FRD.
        assert!((s.accel.z + GRAVITY).abs() < 1e-9, "{:?}", s.accel);
        assert!(s.accel.x.abs() < 1e-9 && s.accel.y.abs() < 1e-9);
        assert_eq!(s.gyro, Vec3::ZERO);
    }

    #[test]
    fn imu_rolled_90_measures_gravity_on_y() {
        let mut imu = Imu::new(
            ImuConfig {
                gyro_noise_std: 0.0,
                gyro_bias_std: 0.0,
                accel_noise_std: 0.0,
                accel_bias_std: 0.0,
                mag_noise_std: 0.0,
            },
            Rng::seed_from(1),
        );
        let state = QuadState {
            attitude: Quat::from_euler(std::f64::consts::FRAC_PI_2, 0.0, 0.0),
            acceleration: Vec3::new(0.0, 0.0, -GRAVITY),
            ..QuadState::default()
        };
        let s = imu.sample(&state, SimTime::ZERO);
        // Rolled right 90°: body +y points down, so specific force is -g on y.
        assert!((s.accel.y + GRAVITY).abs() < 1e-9, "{:?}", s.accel);
        assert!(s.accel.z.abs() < 1e-9);
    }

    #[test]
    fn gyro_noise_statistics() {
        let cfg = ImuConfig {
            gyro_noise_std: 0.01,
            gyro_bias_std: 0.0,
            ..ImuConfig::default()
        };
        let mut imu = Imu::new(cfg, Rng::seed_from(3));
        let xs: Vec<f64> = (0..20_000)
            .map(|i| imu.sample(&level_state(), SimTime::from_micros(i)).gyro.x)
            .collect();
        let s = Stats::of(&xs);
        assert!(s.mean.abs() < 0.001, "mean {}", s.mean);
        assert!((s.std_dev - 0.01).abs() < 0.002, "std {}", s.std_dev);
    }

    #[test]
    fn bias_is_constant_within_a_run() {
        let cfg = ImuConfig {
            gyro_noise_std: 0.0,
            gyro_bias_std: 0.01,
            ..ImuConfig::default()
        };
        let mut imu = Imu::new(cfg, Rng::seed_from(9));
        let a = imu.sample(&level_state(), SimTime::ZERO).gyro;
        let b = imu.sample(&level_state(), SimTime::from_secs(10)).gyro;
        assert_eq!(a, b);
        assert!(a.norm() > 0.0, "bias should be nonzero for this seed");
    }

    #[test]
    fn baro_tracks_altitude() {
        let mut baro = Baro::new(
            BaroConfig {
                noise_std: 0.0,
                drift_std: 0.0,
            },
            Rng::seed_from(4),
        );
        let state = QuadState {
            position: Vec3::new(0.0, 0.0, -10.0),
            ..QuadState::default()
        };
        let s = baro.sample(&state, SimTime::ZERO);
        assert!((s.altitude - 10.0).abs() < 1e-9);
        assert!(s.pressure_hpa < 1013.25);
    }

    #[test]
    fn baro_pressure_decreases_with_altitude() {
        let mut baro = Baro::new(
            BaroConfig {
                noise_std: 0.0,
                drift_std: 0.0,
            },
            Rng::seed_from(4),
        );
        let low = baro
            .sample(
                &QuadState {
                    position: Vec3::new(0.0, 0.0, -1.0),
                    ..QuadState::default()
                },
                SimTime::ZERO,
            )
            .pressure_hpa;
        let high = baro
            .sample(
                &QuadState {
                    position: Vec3::new(0.0, 0.0, -100.0),
                    ..QuadState::default()
                },
                SimTime::from_secs(1),
            )
            .pressure_hpa;
        assert!(high < low);
    }

    #[test]
    fn vicon_fix_is_millimetre_accurate() {
        let mut pos = Positioning::new(PositioningConfig::vicon(), Rng::seed_from(5));
        let state = QuadState {
            position: Vec3::new(1.0, -2.0, -1.5),
            velocity: Vec3::new(0.5, 0.0, 0.0),
            ..QuadState::default()
        };
        let errs: Vec<f64> = (0..1000)
            .map(|i| {
                let f = pos.sample(&state, SimTime::from_millis(i * 100));
                (f.position - state.position).norm()
            })
            .collect();
        let s = Stats::of(&errs);
        assert!(s.mean < 0.01, "mean fix error {}", s.mean);
    }

    #[test]
    fn gps_is_noisier_than_vicon() {
        let state = QuadState {
            position: Vec3::new(1.0, 1.0, -2.0),
            ..QuadState::default()
        };
        let sample_err = |cfg: PositioningConfig, seed| {
            let mut p = Positioning::new(cfg, Rng::seed_from(seed));
            let errs: Vec<f64> = (0..500)
                .map(|i| {
                    (p.sample(&state, SimTime::from_millis(i)).position - state.position).norm()
                })
                .collect();
            Stats::of(&errs).mean
        };
        assert!(
            sample_err(PositioningConfig::gps(), 6)
                > 10.0 * sample_err(PositioningConfig::vicon(), 6)
        );
    }
}
