//! Minimal 3-D vector / matrix / quaternion math for rigid-body simulation.
//!
//! Conventions follow PX4: **NED** world frame (x north, y east, z down) and
//! **FRD** body frame (x forward, y right, z down). A positive `z` position
//! is therefore *below* the origin; hovering at 1 m altitude is `z = -1`.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component column vector.
///
/// # Examples
///
/// ```
/// use uav_dynamics::math::Vec3;
/// let v = Vec3::new(3.0, 4.0, 0.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component (north in NED, forward in FRD).
    pub x: f64,
    /// Y component (east in NED, right in FRD).
    pub y: f64,
    /// Z component (down in both frames).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared length (avoids the square root).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Length of the horizontal (x, y) part.
    pub fn norm_xy(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Unit vector in this direction, or zero if the vector is (near) zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n < 1e-12 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise clamp to `[-limit, limit]`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is negative.
    pub fn clamp_abs(self, limit: f64) -> Vec3 {
        assert!(limit >= 0.0, "negative clamp limit");
        Vec3 {
            x: self.x.clamp(-limit, limit),
            y: self.y.clamp(-limit, limit),
            z: self.z.clamp(-limit, limit),
        }
    }

    /// `true` if every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Component-wise multiplication.
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, r: Vec3) -> Vec3 {
        Vec3::new(self.x + r.x, self.y + r.y, self.z + r.z)
    }
}
impl AddAssign for Vec3 {
    fn add_assign(&mut self, r: Vec3) {
        *self = *self + r;
    }
}
impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, r: Vec3) -> Vec3 {
        Vec3::new(self.x - r.x, self.y - r.y, self.z - r.z)
    }
}
impl SubAssign for Vec3 {
    fn sub_assign(&mut self, r: Vec3) {
        *self = *self - r;
    }
}
impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}
impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}
impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}
impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 3×3 matrix in row-major order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// A diagonal matrix with the given entries.
    pub const fn diag(a: f64, b: f64, c: f64) -> Mat3 {
        Mat3 {
            rows: [[a, 0.0, 0.0], [0.0, b, 0.0], [0.0, 0.0, c]],
        }
    }

    /// Matrix–vector product.
    pub fn mul_vec(self, v: Vec3) -> Vec3 {
        Vec3 {
            x: self.rows[0][0] * v.x + self.rows[0][1] * v.y + self.rows[0][2] * v.z,
            y: self.rows[1][0] * v.x + self.rows[1][1] * v.y + self.rows[1][2] * v.z,
            z: self.rows[2][0] * v.x + self.rows[2][1] * v.y + self.rows[2][2] * v.z,
        }
    }

    /// Matrix transpose.
    pub fn transpose(self) -> Mat3 {
        let r = self.rows;
        Mat3 {
            rows: [
                [r[0][0], r[1][0], r[2][0]],
                [r[0][1], r[1][1], r[2][1]],
                [r[0][2], r[1][2], r[2][2]],
            ],
        }
    }

    /// Inverse of a *diagonal* matrix (enough for inertia tensors here).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has significant off-diagonal terms or a zero
    /// diagonal entry.
    pub fn diag_inverse(self) -> Mat3 {
        let r = self.rows;
        for (i, row) in r.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    assert!(v.abs() < 1e-12, "diag_inverse on non-diagonal matrix");
                }
            }
        }
        assert!(
            r[0][0] != 0.0 && r[1][1] != 0.0 && r[2][2] != 0.0,
            "diag_inverse of singular matrix"
        );
        Mat3::diag(1.0 / r[0][0], 1.0 / r[1][1], 1.0 / r[2][2])
    }
}

/// A unit quaternion representing a rotation from body frame to world frame.
///
/// Scalar-first storage `(w, x, y, z)`, Hamilton convention — matching PX4.
///
/// # Examples
///
/// ```
/// use uav_dynamics::math::{Quat, Vec3};
/// use std::f64::consts::FRAC_PI_2;
///
/// // 90° yaw: body x-axis (forward) maps to world y-axis (east).
/// let q = Quat::from_euler(0.0, 0.0, FRAC_PI_2);
/// let world = q.rotate(Vec3::new(1.0, 0.0, 0.0));
/// assert!((world.y - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part x.
    pub x: f64,
    /// Vector part y.
    pub y: f64,
    /// Vector part z.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from components (not normalized).
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about `axis` (need not be unit length).
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        let axis = axis.normalized();
        let (s, c) = (angle / 2.0).sin_cos();
        Quat {
            w: c,
            x: axis.x * s,
            y: axis.y * s,
            z: axis.z * s,
        }
    }

    /// Builds from aerospace Euler angles (roll φ about x, pitch θ about y,
    /// yaw ψ about z, applied in Z-Y-X order).
    pub fn from_euler(roll: f64, pitch: f64, yaw: f64) -> Quat {
        let (sr, cr) = (roll / 2.0).sin_cos();
        let (sp, cp) = (pitch / 2.0).sin_cos();
        let (sy, cy) = (yaw / 2.0).sin_cos();
        Quat {
            w: cr * cp * cy + sr * sp * sy,
            x: sr * cp * cy - cr * sp * sy,
            y: cr * sp * cy + sr * cp * sy,
            z: cr * cp * sy - sr * sp * cy,
        }
    }

    /// Extracts aerospace Euler angles `(roll, pitch, yaw)`.
    pub fn to_euler(self) -> (f64, f64, f64) {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        let roll = (2.0 * (w * x + y * z)).atan2(1.0 - 2.0 * (x * x + y * y));
        let sinp = (2.0 * (w * y - z * x)).clamp(-1.0, 1.0);
        let pitch = sinp.asin();
        let yaw = (2.0 * (w * z + x * y)).atan2(1.0 - 2.0 * (y * y + z * z));
        (roll, pitch, yaw)
    }

    /// Quaternion (Hamilton) product: `self ⊗ rhs`.
    pub fn mul_quat(self, r: Quat) -> Quat {
        Quat {
            w: self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            x: self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            y: self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            z: self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        }
    }

    /// The inverse rotation (conjugate, assuming unit norm).
    pub fn conjugate(self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Quaternion norm.
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Rescales to unit length (returns identity for a degenerate input).
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n < 1e-12 {
            return Quat::IDENTITY;
        }
        Quat {
            w: self.w / n,
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        }
    }

    /// Rotates a body-frame vector into the world frame.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q ⊗ (0, v) ⊗ q*
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Rotates a world-frame vector into the body frame.
    pub fn rotate_inverse(self, v: Vec3) -> Vec3 {
        self.conjugate().rotate(v)
    }

    /// Integrates body angular velocity `omega` (rad/s) over `dt` seconds
    /// and renormalizes: `q ← q ⊗ exp(ω dt / 2)`.
    pub fn integrate(self, omega: Vec3, dt: f64) -> Quat {
        let theta = omega * dt;
        let angle = theta.norm();
        let dq = if angle < 1e-10 {
            Quat::new(1.0, theta.x / 2.0, theta.y / 2.0, theta.z / 2.0)
        } else {
            Quat::from_axis_angle(theta, angle)
        };
        self.mul_quat(dq).normalized()
    }

    /// The rotation matrix equivalent (body → world).
    pub fn to_mat3(self) -> Mat3 {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        Mat3 {
            rows: [
                [
                    1.0 - 2.0 * (y * y + z * z),
                    2.0 * (x * y - w * z),
                    2.0 * (x * z + w * y),
                ],
                [
                    2.0 * (x * y + w * z),
                    1.0 - 2.0 * (x * x + z * z),
                    2.0 * (y * z - w * x),
                ],
                [
                    2.0 * (x * z - w * y),
                    2.0 * (y * z + w * x),
                    1.0 - 2.0 * (x * x + y * y),
                ],
            ],
        }
    }

    /// Shortest-path angle (radians) between two orientations.
    pub fn angle_to(self, other: Quat) -> f64 {
        let d = self.conjugate().mul_quat(other).normalized();
        2.0 * d.w.abs().clamp(0.0, 1.0).acos()
    }

    /// `true` if every component is finite.
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

/// Wraps an angle to `(-π, π]`.
///
/// # Examples
///
/// ```
/// use uav_dynamics::math::wrap_angle;
/// use std::f64::consts::PI;
/// assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
/// ```
pub fn wrap_angle(a: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut x = a % two_pi;
    if x > std::f64::consts::PI {
        x -= two_pi;
    } else if x <= -std::f64::consts::PI {
        x += two_pi;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    const EPS: f64 = 1e-10;

    #[test]
    fn vec_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a.cross(b), Vec3::new(-3.0, 6.0, -3.0));
        assert!((Vec3::new(1.0, 1.0, 1.0).norm() - 3f64.sqrt()).abs() < EPS);
        assert_eq!(a.hadamard(b), Vec3::new(4.0, 10.0, 18.0));
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::new(0.3, -1.2, 2.0);
        let b = Vec3::new(1.5, 0.4, -0.7);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS);
        assert!(c.dot(b).abs() < EPS);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let v = Vec3::new(0.0, 3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn clamp_abs_bounds_components() {
        let v = Vec3::new(5.0, -7.0, 0.5).clamp_abs(2.0);
        assert_eq!(v, Vec3::new(2.0, -2.0, 0.5));
    }

    #[test]
    fn mat3_identity_and_transpose() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY.mul_vec(v), v);
        let m = Mat3 {
            rows: [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]],
        };
        assert_eq!(m.transpose().rows[0], [1.0, 4.0, 7.0]);
    }

    #[test]
    fn diag_inverse_works() {
        let m = Mat3::diag(2.0, 4.0, 8.0);
        let inv = m.diag_inverse();
        let v = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(inv.mul_vec(v), Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-diagonal")]
    fn diag_inverse_rejects_full_matrix() {
        let m = Mat3 {
            rows: [[1.0, 0.5, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        };
        let _ = m.diag_inverse();
    }

    #[test]
    fn euler_roundtrip() {
        for &(r, p, y) in &[
            (0.1, -0.2, 0.3),
            (-FRAC_PI_4, 0.4, -2.0),
            (0.0, 0.0, PI - 0.01),
            (1.0, -1.2, 0.0),
        ] {
            let q = Quat::from_euler(r, p, y);
            let (r2, p2, y2) = q.to_euler();
            assert!((r - r2).abs() < 1e-9, "roll {r} vs {r2}");
            assert!((p - p2).abs() < 1e-9, "pitch {p} vs {p2}");
            assert!((y - y2).abs() < 1e-9, "yaw {y} vs {y2}");
        }
    }

    #[test]
    fn rotation_preserves_length() {
        let q = Quat::from_euler(0.3, -0.7, 1.9);
        let v = Vec3::new(1.0, 2.0, -3.0);
        assert!((q.rotate(v).norm() - v.norm()).abs() < EPS);
    }

    #[test]
    fn rotate_then_inverse_is_identity() {
        let q = Quat::from_euler(0.5, 0.2, -1.1);
        let v = Vec3::new(-2.0, 0.4, 1.7);
        let back = q.rotate_inverse(q.rotate(v));
        assert!((back - v).norm() < EPS);
    }

    #[test]
    fn quat_matches_matrix_rotation() {
        let q = Quat::from_euler(0.4, -0.9, 2.2);
        let v = Vec3::new(0.3, -1.0, 0.8);
        let via_mat = q.to_mat3().mul_vec(v);
        assert!((q.rotate(v) - via_mat).norm() < EPS);
    }

    #[test]
    fn yaw_rotation_maps_forward_to_east() {
        let q = Quat::from_euler(0.0, 0.0, FRAC_PI_2);
        let east = q.rotate(Vec3::new(1.0, 0.0, 0.0));
        assert!((east - Vec3::new(0.0, 1.0, 0.0)).norm() < EPS);
    }

    #[test]
    fn integrate_constant_rate_accumulates_angle() {
        // 1 rad/s about z for 1 s in 1000 steps = 1 rad yaw.
        let mut q = Quat::IDENTITY;
        for _ in 0..1000 {
            q = q.integrate(Vec3::new(0.0, 0.0, 1.0), 0.001);
        }
        let (_, _, yaw) = q.to_euler();
        assert!((yaw - 1.0).abs() < 1e-6, "yaw {yaw}");
        assert!((q.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_to_measures_rotation_difference() {
        let a = Quat::from_euler(0.0, 0.0, 0.0);
        let b = Quat::from_euler(0.0, 0.0, FRAC_PI_2);
        assert!((a.angle_to(b) - FRAC_PI_2).abs() < 1e-9);
        assert!(a.angle_to(a) < 1e-9);
    }

    #[test]
    fn wrap_angle_stays_in_range() {
        for k in -10..=10 {
            let a = 0.7 + k as f64 * std::f64::consts::TAU;
            assert!((wrap_angle(a) - 0.7).abs() < 1e-9);
        }
        assert!((wrap_angle(-PI) - PI).abs() < 1e-12);
    }
}
