//! Quadrotor flight dynamics, sensors and environment for the
//! ContainerDrone reproduction.
//!
//! The paper's evaluation happens on a physical quadcopter in a Vicon lab;
//! this crate is the substitute: a 6-DOF rigid-body quadrotor ([`quad`]),
//! first-order motor dynamics ([`motor`]), turbulence and the flight cage
//! ([`environment`]), Navio2-class sensor models ([`sensors`]), crash
//! detection matching the paper's failure outcomes ([`crash`]), and the
//! assembled [`world::World`] the framework actuates and samples.
//!
//! Frames are NED world / FRD body throughout (see [`math`]); hovering at
//! one metre is `z = −1`, matching the Z-setpoint in the paper's Figures 4–7.
//!
//! # Examples
//!
//! ```
//! use uav_dynamics::prelude::*;
//! use sim_core::time::SimTime;
//!
//! let mut world = World::new(WorldConfig::default(), 1);
//! world.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
//! // Hold hover thrust open-loop for 50 ms.
//! let hover = world.quad_params().hover_command();
//! world.set_motor_commands([hover; 4]);
//! world.advance_to(SimTime::from_millis(50));
//! assert!(world.crash().is_none());
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod crash;
pub mod environment;
pub mod math;
pub mod motor;
pub mod quad;
pub mod sensors;
pub mod world;

pub use batch::WorldBatch;
pub use crash::{Crash, CrashConfig, CrashDetector, CrashKind};
pub use environment::{FlightCage, Wind, WindConfig};
pub use math::{wrap_angle, Mat3, Quat, Vec3};
pub use motor::{cmd_to_pwm, pwm_to_cmd, Motor, PWM_MAX, PWM_MIN};
pub use quad::{QuadParams, QuadState, Quadrotor, GRAVITY};
pub use sensors::{
    Baro, BaroConfig, BaroSample, Imu, ImuConfig, ImuSample, PositionFix, Positioning,
    PositioningConfig,
};
pub use world::{World, WorldConfig};

/// Convenient glob import of the dynamics types.
pub mod prelude {
    pub use crate::crash::{Crash, CrashConfig, CrashKind};
    pub use crate::environment::{FlightCage, Wind, WindConfig};
    pub use crate::math::{wrap_angle, Mat3, Quat, Vec3};
    pub use crate::motor::{cmd_to_pwm, pwm_to_cmd, PWM_MAX, PWM_MIN};
    pub use crate::quad::{QuadParams, QuadState, Quadrotor, GRAVITY};
    pub use crate::sensors::{BaroSample, ImuConfig, ImuSample, PositionFix, PositioningConfig};
    pub use crate::world::{World, WorldConfig};
}
