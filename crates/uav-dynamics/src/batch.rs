//! Struct-of-arrays batch physics: many worlds' idle spans advanced in
//! one contiguous sweep.
//!
//! A fleet shard that leaps its vehicles' scheduler/network idle spans is
//! left with N pending physics catch-ups per poll batch — one
//! [`World::advance_to`] per vehicle, each buried inside a megabytes-wide
//! `VehicleInstance`. Walking those worlds one vehicle at a time drags a
//! whole vehicle's working set through cache for a few hundred floating
//! point operations. [`WorldBatch`] instead *gathers* the integrator
//! state into struct-of-arrays lanes — positions, velocities, attitudes,
//! angular rates, motor banks and wind processes each contiguous across
//! the shard — advances every lane substep-outer/lane-inner, and
//! *scatters* the results back.
//!
//! # Bit-exactness
//!
//! Batched physics is **bit-identical** to per-world stepping, by
//! construction:
//!
//! - every lane substep runs [`Quadrotor::step_kernel`] — the *same*
//!   function body `World::advance_to` runs — on the lane's own state;
//! - each world's wind process (its RNG included) and crash detector
//!   travel with the lane, so noise streams advance exactly as they
//!   would in place;
//! - lanes never read each other, so the substep-outer interleaving
//!   cannot change any lane's arithmetic.
//!
//! The fleet equivalence tests pin this end-to-end (batched leap runs
//! against quantum-stepped runs, byte-for-byte).
//!
//! All lane storage is pooled: [`WorldBatch::clear`] keeps capacity, so a
//! steady-state fleet batch allocates nothing (the counting-allocator
//! gate covers this).

use sim_core::time::{SimDuration, SimTime};

use crate::crash::CrashDetector;
use crate::environment::Wind;
use crate::math::{Mat3, Quat, Vec3};
use crate::motor::Motor;
use crate::quad::{QuadParams, QuadState, Quadrotor};
use crate::world::World;

/// Pooled struct-of-arrays lanes for batched physics catch-up.
///
/// # Examples
///
/// ```
/// use uav_dynamics::batch::WorldBatch;
/// use uav_dynamics::world::{World, WorldConfig};
/// use uav_dynamics::math::Vec3;
/// use sim_core::time::SimTime;
///
/// let mut a = World::new(WorldConfig::default(), 1);
/// a.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
/// let mut batch = WorldBatch::default();
/// let lane = batch.enroll(&a, SimTime::from_millis(20));
/// batch.advance();
/// batch.scatter_into(lane, &mut a);
/// assert_eq!(a.now(), SimTime::from_millis(20));
/// ```
#[derive(Debug, Default)]
pub struct WorldBatch {
    // Per-lane integration window.
    dt: Vec<SimDuration>,
    dt_s: Vec<f64>,
    now: Vec<SimTime>,
    target: Vec<SimTime>,
    // Airframe constants.
    params: Vec<QuadParams>,
    inertia_inv: Vec<Mat3>,
    // Kinematic state, one field per array: the contiguous lanes the
    // integrator sweeps.
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    attitudes: Vec<Quat>,
    angular_velocities: Vec<Vec3>,
    accelerations: Vec<Vec3>,
    // Actuation, environment and failure state.
    motors: Vec<[Motor; 4]>,
    on_ground: Vec<bool>,
    winds: Vec<Wind>,
    detectors: Vec<CrashDetector>,
}

impl WorldBatch {
    /// Number of enrolled lanes.
    pub fn len(&self) -> usize {
        self.now.len()
    }

    /// `true` when no lane is enrolled.
    pub fn is_empty(&self) -> bool {
        self.now.is_empty()
    }

    /// Drops every lane but keeps the allocations for the next batch.
    pub fn clear(&mut self) {
        self.dt.clear();
        self.dt_s.clear();
        self.now.clear();
        self.target.clear();
        self.params.clear();
        self.inertia_inv.clear();
        self.positions.clear();
        self.velocities.clear();
        self.attitudes.clear();
        self.angular_velocities.clear();
        self.accelerations.clear();
        self.motors.clear();
        self.on_ground.clear();
        self.winds.clear();
        self.detectors.clear();
    }

    /// Gathers `world`'s physics into a new lane that [`WorldBatch::advance`]
    /// will integrate up to `target`. The world keeps its now-stale state
    /// until the matching [`WorldBatch::scatter_into`]; callers must not
    /// read or step it in between. Returns the lane index.
    ///
    /// # Panics
    ///
    /// Panics if the world's physics step is zero (the sweep could not
    /// terminate).
    pub fn enroll(&mut self, world: &World, target: SimTime) -> usize {
        let lane = world.extract_lane();
        assert!(
            lane.dt > SimDuration::ZERO,
            "physics_dt must be positive for batched integration"
        );
        self.dt.push(lane.dt);
        self.dt_s.push(lane.dt.as_secs_f64());
        self.now.push(lane.now);
        self.target.push(target);
        self.params.push(lane.params);
        self.inertia_inv.push(lane.inertia_inv);
        self.positions.push(lane.state.position);
        self.velocities.push(lane.state.velocity);
        self.attitudes.push(lane.state.attitude);
        self.angular_velocities.push(lane.state.angular_velocity);
        self.accelerations.push(lane.state.acceleration);
        self.motors.push(lane.motors);
        self.on_ground.push(lane.on_ground);
        self.winds.push(lane.wind);
        self.detectors.push(lane.detector);
        self.now.len() - 1
    }

    /// Integrates every lane to its target, substep-outer/lane-inner:
    /// each sweep advances all still-pending lanes by one fixed substep,
    /// walking the struct-of-arrays storage front to back. Lanes are
    /// independent, so this interleaving is bit-identical to advancing
    /// each world serially.
    pub fn advance(&mut self) {
        loop {
            let mut pending = false;
            for i in 0..self.now.len() {
                let dt = self.dt[i];
                if self.now[i] + dt > self.target[i] {
                    continue;
                }
                pending = true;
                let dt_s = self.dt_s[i];
                let wind = self.winds[i].step(dt_s);
                let mut state = QuadState {
                    position: self.positions[i],
                    velocity: self.velocities[i],
                    attitude: self.attitudes[i],
                    angular_velocity: self.angular_velocities[i],
                    acceleration: self.accelerations[i],
                };
                Quadrotor::step_kernel(
                    &self.params[i],
                    &self.inertia_inv[i],
                    &mut state,
                    &mut self.motors[i],
                    &mut self.on_ground[i],
                    dt_s,
                    wind,
                );
                self.now[i] += dt;
                self.detectors[i].check(&state, self.on_ground[i], self.now[i]);
                self.positions[i] = state.position;
                self.velocities[i] = state.velocity;
                self.attitudes[i] = state.attitude;
                self.angular_velocities[i] = state.angular_velocity;
                self.accelerations[i] = state.acceleration;
            }
            if !pending {
                return;
            }
        }
    }

    /// Writes an advanced lane back into its world (the inverse of
    /// [`WorldBatch::enroll`]). Lanes may be scattered in any order, each
    /// exactly once per enrollment.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn scatter_into(&self, lane: usize, world: &mut World) {
        world.restore_lane(crate::world::LaneState {
            dt: self.dt[lane],
            now: self.now[lane],
            params: self.params[lane],
            inertia_inv: self.inertia_inv[lane],
            state: QuadState {
                position: self.positions[lane],
                velocity: self.velocities[lane],
                attitude: self.attitudes[lane],
                angular_velocity: self.angular_velocities[lane],
                acceleration: self.accelerations[lane],
            },
            motors: self.motors[lane],
            on_ground: self.on_ground[lane],
            wind: self.winds[lane].clone(),
            detector: self.detectors[lane].clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn hover_world(seed: u64) -> World {
        let mut w = World::new(WorldConfig::default(), seed);
        w.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
        let hover = w.quad_params().hover_command();
        w.set_motor_commands([hover; 4]);
        w
    }

    fn assert_worlds_identical(a: &World, b: &World, label: &str) {
        assert_eq!(a.now(), b.now(), "{label}: now");
        assert_eq!(a.truth(), b.truth(), "{label}: state");
        assert_eq!(a.on_ground(), b.on_ground(), "{label}: on_ground");
        assert_eq!(a.crash(), b.crash(), "{label}: crash");
    }

    #[test]
    fn batched_advance_is_bit_identical_to_serial() {
        let mut batch = WorldBatch::default();
        let mut batched: Vec<World> = (0..5).map(hover_world).collect();
        let mut serial = batched.clone();
        let target = SimTime::from_millis(500);

        let lanes: Vec<usize> = batched.iter().map(|w| batch.enroll(w, target)).collect();
        batch.advance();
        for (lane, w) in lanes.into_iter().zip(batched.iter_mut()) {
            batch.scatter_into(lane, w);
        }
        for w in serial.iter_mut() {
            w.advance_to(target);
        }
        for (i, (a, b)) in batched.iter().zip(serial.iter()).enumerate() {
            assert_worlds_identical(a, b, &format!("seed {i}"));
        }
    }

    #[test]
    fn staggered_lane_starts_and_targets_match_serial() {
        // Lanes enter the batch at different phases and leave at
        // different targets — the shape a fleet poll batch produces when
        // vehicles flushed at different mid-span events.
        let mut batch = WorldBatch::default();
        let mut batched: Vec<World> = (0..4).map(|i| hover_world(100 + i)).collect();
        for (i, w) in batched.iter_mut().enumerate() {
            w.advance_to(SimTime::from_micros(500 * i as u64));
        }
        let mut serial = batched.clone();
        let targets: Vec<SimTime> = (0..4)
            .map(|i| SimTime::from_millis(20) + SimDuration::from_micros(500 * i as u64))
            .collect();

        let lanes: Vec<usize> = batched
            .iter()
            .zip(&targets)
            .map(|(w, &t)| batch.enroll(w, t))
            .collect();
        batch.advance();
        for (lane, w) in lanes.into_iter().zip(batched.iter_mut()) {
            batch.scatter_into(lane, w);
        }
        for (w, &t) in serial.iter_mut().zip(&targets) {
            w.advance_to(t);
        }
        for (i, (a, b)) in batched.iter().zip(serial.iter()).enumerate() {
            assert_worlds_identical(a, b, &format!("lane {i}"));
        }
    }

    #[test]
    fn crashes_latch_identically_in_batch() {
        // Motors off from 2 m: the ground-impact crash must latch at the
        // same substep with the same timestamp either way.
        let mut w = World::new(WorldConfig::default(), 7);
        w.start_at_hover(Vec3::new(0.0, 0.0, -2.0));
        w.set_motor_commands([0.0; 4]);
        let mut serial = w.clone();
        let target = SimTime::from_secs(3);

        let mut batch = WorldBatch::default();
        let lane = batch.enroll(&w, target);
        batch.advance();
        batch.scatter_into(lane, &mut w);
        serial.advance_to(target);

        assert!(w.crash().is_some(), "free fall from 2 m must crash");
        assert_worlds_identical(&w, &serial, "crash lane");
    }

    #[test]
    fn cleared_batch_reuses_lanes_without_leaking_state() {
        let mut batch = WorldBatch::default();
        let mut a = hover_world(1);
        let lane = batch.enroll(&a, SimTime::from_millis(50));
        batch.advance();
        batch.scatter_into(lane, &mut a);
        batch.clear();
        assert!(batch.is_empty());

        // Second use: a fresh world must behave exactly as in a fresh batch.
        let mut b = hover_world(2);
        let mut b_ref = b.clone();
        let lane = batch.enroll(&b, SimTime::from_millis(50));
        assert_eq!(lane, 0);
        assert_eq!(batch.len(), 1);
        batch.advance();
        batch.scatter_into(lane, &mut b);
        b_ref.advance_to(SimTime::from_millis(50));
        assert_worlds_identical(&b, &b_ref, "reused batch");
    }

    #[test]
    fn past_target_is_a_no_op_lane() {
        let mut batch = WorldBatch::default();
        let mut w = hover_world(3);
        w.advance_to(SimTime::from_millis(10));
        let before = *w.truth();
        let lane = batch.enroll(&w, SimTime::from_millis(5));
        batch.advance();
        batch.scatter_into(lane, &mut w);
        assert_eq!(w.now(), SimTime::from_millis(10));
        assert_eq!(*w.truth(), before);
    }
}
