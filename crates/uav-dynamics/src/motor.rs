//! Brushless motor + ESC model.
//!
//! Commands arrive as PWM microseconds (1000–2000), the convention the
//! paper's `MotorOutput` stream uses. Thrust follows the command through a
//! first-order lag — the dominant actuator dynamic a rate controller fights.

/// PWM value that commands zero thrust.
pub const PWM_MIN: u16 = 1000;
/// PWM value that commands full thrust.
pub const PWM_MAX: u16 = 2000;

/// Converts a PWM command to a normalized thrust command in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use uav_dynamics::motor::pwm_to_cmd;
/// assert_eq!(pwm_to_cmd(1000), 0.0);
/// assert_eq!(pwm_to_cmd(1500), 0.5);
/// assert_eq!(pwm_to_cmd(2300), 1.0); // clamped
/// ```
pub fn pwm_to_cmd(pwm: u16) -> f64 {
    ((pwm as f64 - PWM_MIN as f64) / (PWM_MAX - PWM_MIN) as f64).clamp(0.0, 1.0)
}

/// Converts a normalized thrust command in `[0, 1]` to a PWM value.
///
/// # Examples
///
/// ```
/// use uav_dynamics::motor::cmd_to_pwm;
/// assert_eq!(cmd_to_pwm(0.0), 1000);
/// assert_eq!(cmd_to_pwm(0.5), 1500);
/// assert_eq!(cmd_to_pwm(1.2), 2000); // clamped
/// ```
pub fn cmd_to_pwm(cmd: f64) -> u16 {
    let c = cmd.clamp(0.0, 1.0);
    (PWM_MIN as f64 + c * (PWM_MAX - PWM_MIN) as f64).round() as u16
}

/// One motor: first-order thrust response `τ·Ṫ = T_cmd − T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Motor {
    /// Maximum steady-state thrust, newtons.
    pub max_thrust: f64,
    /// Thrust response time constant, seconds.
    pub time_constant: f64,
    thrust: f64,
    command: f64,
}

impl Motor {
    /// Creates a motor at zero thrust.
    ///
    /// # Panics
    ///
    /// Panics if `max_thrust` or `time_constant` is not positive.
    pub fn new(max_thrust: f64, time_constant: f64) -> Self {
        assert!(max_thrust > 0.0, "max_thrust must be positive");
        assert!(time_constant > 0.0, "time_constant must be positive");
        Motor {
            max_thrust,
            time_constant,
            thrust: 0.0,
            command: 0.0,
        }
    }

    /// Sets the normalized thrust command (clamped to `[0, 1]`).
    pub fn set_command(&mut self, cmd: f64) {
        self.command = cmd.clamp(0.0, 1.0);
    }

    /// Sets the command from a PWM value.
    pub fn set_pwm(&mut self, pwm: u16) {
        self.set_command(pwm_to_cmd(pwm));
    }

    /// Advances the lag dynamics by `dt` seconds.
    pub fn step(&mut self, dt: f64) {
        let target = self.command * self.max_thrust;
        // Exact discretization of the first-order lag (stable for any dt).
        let alpha = 1.0 - (-dt / self.time_constant).exp();
        self.thrust += (target - self.thrust) * alpha;
    }

    /// Current thrust, newtons.
    pub fn thrust(&self) -> f64 {
        self.thrust
    }

    /// Current normalized command.
    pub fn command(&self) -> f64 {
        self.command
    }

    /// Forces the internal thrust state (used to start scenarios at hover).
    pub fn set_thrust_state(&mut self, thrust: f64) {
        self.thrust = thrust.clamp(0.0, self.max_thrust);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pwm_conversion_roundtrip() {
        for pwm in [1000u16, 1250, 1500, 1750, 2000] {
            assert_eq!(cmd_to_pwm(pwm_to_cmd(pwm)), pwm);
        }
    }

    #[test]
    fn thrust_approaches_command() {
        let mut m = Motor::new(6.0, 0.02);
        m.set_command(0.5);
        for _ in 0..1000 {
            m.step(0.001);
        }
        assert!((m.thrust() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn lag_time_constant_is_respected() {
        let mut m = Motor::new(10.0, 0.05);
        m.set_command(1.0);
        // After exactly one time constant, response = 1 - 1/e ≈ 63.2%.
        let steps = 50;
        for _ in 0..steps {
            m.step(0.001);
        }
        let expected = 10.0 * (1.0 - (-1.0f64).exp());
        assert!((m.thrust() - expected).abs() < 1e-6, "{}", m.thrust());
    }

    #[test]
    fn command_is_clamped() {
        let mut m = Motor::new(6.0, 0.02);
        m.set_command(2.0);
        assert_eq!(m.command(), 1.0);
        m.set_command(-1.0);
        assert_eq!(m.command(), 0.0);
    }

    #[test]
    fn step_is_stable_for_large_dt() {
        let mut m = Motor::new(6.0, 0.02);
        m.set_command(1.0);
        m.step(10.0); // dt >> tau must not overshoot
        assert!(m.thrust() <= 6.0 + 1e-9);
    }
}
