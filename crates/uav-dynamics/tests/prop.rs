//! Property-based tests for the dynamics crate: quaternion algebra,
//! motor behaviour, and physics invariants under arbitrary inputs.

use proptest::prelude::*;
use uav_dynamics::math::{wrap_angle, Quat, Vec3};
use uav_dynamics::motor::{cmd_to_pwm, pwm_to_cmd, Motor};
use uav_dynamics::quad::{QuadParams, Quadrotor};

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0)
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_quat() -> impl Strategy<Value = Quat> {
    // Roll/pitch away from the ±90° pitch singularity for roundtrips.
    (-3.0f64..3.0, -1.4f64..1.4, -3.0f64..3.0)
        .prop_map(|(r, p, y)| Quat::from_euler(r, p, y))
}

proptest! {
    /// Rotations preserve vector length and dot products (isometry).
    #[test]
    fn rotation_is_isometric(q in arb_quat(), a in arb_vec3(), b in arb_vec3()) {
        let ra = q.rotate(a);
        let rb = q.rotate(b);
        prop_assert!((ra.norm() - a.norm()).abs() < 1e-9);
        prop_assert!((ra.dot(rb) - a.dot(b)).abs() < 1e-6);
    }

    /// rotate ∘ rotate_inverse is the identity.
    #[test]
    fn rotation_roundtrip(q in arb_quat(), v in arb_vec3()) {
        let back = q.rotate_inverse(q.rotate(v));
        prop_assert!((back - v).norm() < 1e-9, "{back:?} vs {v:?}");
    }

    /// Euler → quaternion → Euler is the identity away from the pitch
    /// singularity.
    #[test]
    fn euler_roundtrip(r in -3.0f64..3.0, p in -1.4f64..1.4, y in -3.0f64..3.0) {
        let q = Quat::from_euler(r, p, y);
        let (r2, p2, y2) = q.to_euler();
        prop_assert!((wrap_angle(r - r2)).abs() < 1e-8, "roll {r} vs {r2}");
        prop_assert!((p - p2).abs() < 1e-8, "pitch {p} vs {p2}");
        prop_assert!((wrap_angle(y - y2)).abs() < 1e-8, "yaw {y} vs {y2}");
    }

    /// Quaternion integration keeps unit norm for any rate and step.
    #[test]
    fn integration_stays_normalized(
        q in arb_quat(),
        omega in arb_vec3(),
        dt in 0.0f64..0.1,
    ) {
        let q2 = q.integrate(omega, dt);
        prop_assert!((q2.norm() - 1.0).abs() < 1e-9);
    }

    /// angle_to is symmetric, zero on self, bounded by π.
    #[test]
    fn angle_metric_properties(a in arb_quat(), b in arb_quat()) {
        prop_assert!(a.angle_to(a) < 1e-6);
        let ab = a.angle_to(b);
        let ba = b.angle_to(a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-9).contains(&ab));
    }

    /// wrap_angle lands in (−π, π] and preserves the angle modulo 2π.
    #[test]
    fn wrap_angle_properties(a in -1000.0f64..1000.0) {
        let w = wrap_angle(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        prop_assert!(((a - w) / std::f64::consts::TAU).round() * std::f64::consts::TAU - (a - w) < 1e-9);
    }

    /// PWM conversion roundtrips within quantization and is monotone.
    #[test]
    fn pwm_conversion(pwm in 1000u16..=2000) {
        let c = pwm_to_cmd(pwm);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(cmd_to_pwm(c).abs_diff(pwm) <= 1);
        if pwm < 2000 {
            prop_assert!(pwm_to_cmd(pwm + 1) >= c);
        }
    }

    /// Motor thrust stays within [0, max] and converges toward the command
    /// for any step pattern.
    #[test]
    fn motor_thrust_bounded(
        cmds in prop::collection::vec(0.0f64..1.0, 1..50),
        dt in 0.0001f64..0.05,
    ) {
        let mut m = Motor::new(6.0, 0.02);
        for c in cmds {
            m.set_command(c);
            for _ in 0..20 {
                m.step(dt);
                prop_assert!(m.thrust() >= -1e-12 && m.thrust() <= 6.0 + 1e-12);
            }
        }
    }

    /// The airframe never produces NaN state for arbitrary motor commands,
    /// and the attitude quaternion stays normalized.
    #[test]
    fn physics_stays_finite(
        cmds in prop::collection::vec(prop::array::uniform4(0.0f64..1.0), 1..20),
    ) {
        let mut quad = Quadrotor::new(QuadParams::default());
        quad.start_at_hover(Vec3::new(0.0, 0.0, -20.0));
        for c in cmds {
            quad.set_motor_commands(c);
            for _ in 0..100 {
                quad.step(0.001, Vec3::ZERO);
            }
            let s = quad.state();
            prop_assert!(s.position.is_finite());
            prop_assert!(s.velocity.is_finite());
            prop_assert!(s.attitude.is_finite());
            prop_assert!((s.attitude.norm() - 1.0).abs() < 1e-6);
        }
    }
}
