//! Deterministic pseudo-random number generation.
//!
//! The simulator must produce bit-identical results for a given seed across
//! platforms and across dependency upgrades, so we implement a small, fixed
//! generator in-crate instead of relying on an external RNG whose stream may
//! change between versions: [`SplitMix64`] for seeding and stream derivation,
//! and [`Xoshiro256StarStar`] as the workhorse generator, with uniform and
//! Gaussian helpers.

/// SplitMix64 generator, used to expand a single `u64` master seed into the
/// 256-bit state of [`Xoshiro256StarStar`] and to derive independent
/// per-subsystem streams.
///
/// # Examples
///
/// ```
/// use sim_core::rng::SplitMix64;
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 by Blackman and Vigna — a fast, high-quality,
/// deterministic PRNG with a 256-bit state.
///
/// # Examples
///
/// ```
/// use sim_core::rng::Rng;
/// let mut rng = Rng::seed_from(7);
/// let x = rng.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The simulator's default RNG. Alias of [`Xoshiro256StarStar`].
pub type Rng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the generator by expanding `seed` through [`SplitMix64`],
    /// as recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Derives an independent stream for a named subsystem.
    ///
    /// Streams derived with different `salt` values from the same master
    /// seed are statistically independent, which lets subsystems draw noise
    /// without perturbing each other's sequences (adding a sensor does not
    /// change the wind gusts).
    pub fn derive(master_seed: u64, salt: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in salt.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seed_from(master_seed ^ h)
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniformly distributed integer in `[0, n)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A standard normal (mean 0, std 1) sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev: {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Rng::seed_from(99);
        let mut b = Rng::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = Rng::derive(42, "imu");
        let mut b = Rng::derive(42, "wind");
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn next_range_is_unbiased_enough() {
        let mut rng = Rng::seed_from(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.next_range(5) as usize] += 1;
        }
        for c in counts {
            // Each bucket expects 10_000; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::seed_from(2024);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
