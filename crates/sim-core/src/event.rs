//! A deterministic time-ordered event queue.
//!
//! Components that act at irregular instants (attack onsets, scripted
//! operator actions, one-shot timers) schedule payloads here; the main loop
//! drains everything due at or before the current quantum boundary. Events
//! at the same instant are delivered in insertion order, which keeps runs
//! reproducible regardless of queue internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of `(SimTime, payload)` pairs with stable FIFO ordering for
/// simultaneous events.
///
/// # Examples
///
/// ```
/// use sim_core::event::EventQueue;
/// use sim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// let due: Vec<_> = q.pop_due(SimTime::from_millis(5)).map(|(_, e)| e).collect();
/// assert_eq!(due, vec!["early", "late"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    // Determinism audit (unordered_iter): both hash sets are probe-only
    // (insert/remove/contains by sequence number, never iterated), so
    // hash order cannot influence delivery order — that comes solely
    // from the heap's (time, seq) ordering. The compaction `retain`
    // walks the heap, not a set. cd-lint enforces this for future edits.
    /// Sequence numbers scheduled, not yet delivered, not cancelled.
    pending: std::collections::HashSet<u64>,
    /// Lazily deleted entries still sitting in the heap. Every id in here
    /// is in the heap; ids leave the set the moment their entry pops (or
    /// when compaction rebuilds the heap), so the set can never leak.
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedules `payload` to fire at `time`. Returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending (ids of already-delivered or already-cancelled
    /// events report `false` and change nothing).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id.0) {
            return false;
        }
        // Lazy deletion: remember the id and skip it when popped …
        self.cancelled.insert(id.0);
        // … unless cancelled entries dominate the heap, in which case a
        // one-off O(n) compaction keeps pop cost proportional to *live*
        // events.
        if self.cancelled.len() > self.heap.len() / 2 && self.cancelled.len() > 16 {
            let cancelled = std::mem::take(&mut self.cancelled);
            self.heap.retain(|e| !cancelled.contains(&e.seq));
        }
        true
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the next pending event without mutating the queue —
    /// the `&self` complement of [`EventQueue::peek_time`], for callers
    /// that only *plan* around the deadline (an event-driven executor
    /// computing how far it may leap) and must not disturb queue state.
    ///
    /// Lazily-cancelled entries still sitting in the heap are skipped by
    /// filtering rather than popping, so the scan is O(k) in the number
    /// of dead entries ahead of the first live one (the compaction in
    /// [`EventQueue::cancel`] keeps that bounded). The heap's top is the
    /// earliest entry overall, so walking forward from it until the
    /// first non-cancelled entry yields the true deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.pending.is_empty() {
            return None;
        }
        // The heap's iteration order is unspecified, but the minimum
        // over live entries is order-independent.
        self.heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| e.time)
            .min()
    }

    /// Drains every event due at or before `now`, in time order (FIFO for
    /// equal times).
    pub fn pop_due(&mut self, now: SimTime) -> PopDue<'_, E> {
        PopDue { queue: self, now }
    }

    /// Entries physically held by the heap (live + lazily cancelled);
    /// exposed for the compaction tests.
    #[cfg(test)]
    fn heap_len(&self) -> usize {
        self.heap.len()
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    fn pop_one_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        if self.heap.peek().is_some_and(|e| e.time <= now) {
            let e = self.heap.pop().expect("peeked entry must exist");
            self.pending.remove(&e.seq);
            Some((e.time, e.payload))
        } else {
            None
        }
    }
}

/// Iterator returned by [`EventQueue::pop_due`].
#[derive(Debug)]
pub struct PopDue<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<E> Iterator for PopDue<'_, E> {
    type Item = (SimTime, E);

    fn next(&mut self) -> Option<Self::Item> {
        self.queue.pop_one_due(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let out: Vec<i32> = q.pop_due(SimTime::from_secs(1)).map(|(_, e)| e).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let out: Vec<i32> = q.pop_due(t).map(|(_, e)| e).collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn only_due_events_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let out: Vec<&str> = q
            .pop_due(SimTime::from_millis(15))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(out, vec!["a"]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_millis(1), "keep");
        let drop = q.schedule(SimTime::from_millis(2), "drop");
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double cancel reports false");
        let out: Vec<&str> = q.pop_due(SimTime::from_secs(1)).map(|(_, e)| e).collect();
        assert_eq!(out, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn next_deadline_reports_earliest_pending() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_deadline(), None);
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.next_deadline(), Some(SimTime::from_millis(10)));
        // Non-popping: asking twice changes nothing.
        assert_eq!(q.next_deadline(), Some(SimTime::from_millis(10)));
        assert_eq!(q.len(), 3);
        let out: Vec<i32> = q.pop_due(SimTime::from_secs(1)).map(|(_, e)| e).collect();
        assert_eq!(out, vec![1, 2, 3], "deadline queries never reorder");
        assert_eq!(q.next_deadline(), None);
    }

    #[test]
    fn next_deadline_skips_lazily_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), 1);
        let b = q.schedule(SimTime::from_millis(2), 2);
        q.schedule(SimTime::from_millis(5), 3);
        q.cancel(a);
        q.cancel(b);
        // Both dead entries still sit in the heap (below the compaction
        // threshold), yet the deadline must see through them.
        assert_eq!(q.next_deadline(), Some(SimTime::from_millis(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_deadline_empty_after_all_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), 1);
        q.cancel(a);
        assert_eq!(q.next_deadline(), None);
    }

    #[test]
    fn next_deadline_agrees_with_peek_time() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..20)
            .map(|i| q.schedule(SimTime::from_millis(20 - i), i))
            .collect();
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
        }
        assert_eq!(q.next_deadline(), q.peek_time());
    }

    #[test]
    fn cancelling_a_delivered_event_is_a_clean_no_op() {
        // Regression: this used to poison the cancelled set forever and
        // corrupt len() for the rest of the queue's life.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(10), "b");
        let delivered: Vec<&str> = q.pop_due(SimTime::from_millis(5)).map(|(_, e)| e).collect();
        assert_eq!(delivered, vec!["a"]);
        assert!(!q.cancel(a), "already delivered: cancel reports false");
        assert_eq!(q.len(), 1, "len unaffected by the stale cancel");
        let rest: Vec<&str> = q.pop_due(SimTime::from_secs(1)).map(|(_, e)| e).collect();
        assert_eq!(rest, vec!["b"]);
        assert!(q.is_empty());
    }

    #[test]
    fn popped_entries_leave_the_cancelled_set() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(q.schedule(SimTime::from_millis(i), i));
        }
        for id in &ids[..5] {
            assert!(q.cancel(*id));
        }
        let out: Vec<u64> = q.pop_due(SimTime::from_secs(1)).map(|(_, e)| e).collect();
        assert_eq!(out, vec![5, 6, 7, 8, 9]);
        assert!(q.is_empty());
        assert_eq!(q.heap_len(), 0, "no lazily-cancelled residue");
    }

    #[test]
    fn mass_cancellation_compacts_the_heap() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..100)
            .map(|i| q.schedule(SimTime::from_millis(i), i))
            .collect();
        // Cancel 90 of 100 without ever popping: lazily deleted entries
        // would otherwise dominate the heap.
        for id in &ids[..90] {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 10);
        assert!(
            q.heap_len() < 60,
            "compaction must purge dead entries, heap still holds {}",
            q.heap_len()
        );
        let out: Vec<u64> = q.pop_due(SimTime::from_secs(1)).map(|(_, e)| e).collect();
        assert_eq!(out, (90..100).collect::<Vec<_>>());
    }
}
