//! Time-series recording and trajectory metrics.
//!
//! The paper's evaluation figures are trajectory plots (setpoint vs estimated
//! position over time). [`TimeSeries`] records sampled signals during a run;
//! the metric helpers quantify the *shape* properties we assert in tests and
//! report in EXPERIMENTS.md: maximum deviation, settling, oscillation, and
//! divergence.

use crate::time::SimTime;

/// A sampled scalar signal: a sequence of `(time, value)` pairs in
/// non-decreasing time order.
///
/// # Examples
///
/// ```
/// use sim_core::series::TimeSeries;
/// use sim_core::time::SimTime;
///
/// let mut s = TimeSeries::new("altitude");
/// s.push(SimTime::from_millis(0), 0.0);
/// s.push(SimTime::from_millis(100), 1.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.last_value(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The series name (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reserves capacity for at least `additional` more samples, so a
    /// fixed-duration recording loop never reallocates.
    pub fn reserve(&mut self, additional: usize) {
        self.times.reserve(additional);
        self.values.reserve(additional);
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `t` precedes the previous sample's time
    /// (release builds skip the per-sample check — this is the hottest
    /// recording path in the simulator).
    pub fn push(&mut self, t: SimTime, value: f64) {
        #[cfg(debug_assertions)]
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "samples must be time-ordered: {t} < {last}");
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The most recent value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Value at or immediately before `t` (sample-and-hold), if any sample
    /// exists at or before `t`.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.times.partition_point(|&ts| ts <= t) {
            0 => None,
            n => Some(self.values[n - 1]),
        }
    }

    /// Restricts to samples with `from <= t < to` and returns their values.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[f64] {
        let lo = self.times.partition_point(|&ts| ts < from);
        let hi = self.times.partition_point(|&ts| ts < to);
        &self.values[lo..hi]
    }

    /// Maximum of `|value - reference|` over samples in `[from, to)`.
    /// Returns `None` if the window is empty.
    pub fn max_abs_deviation(&self, reference: f64, from: SimTime, to: SimTime) -> Option<f64> {
        self.window(from, to)
            .iter()
            .map(|v| (v - reference).abs())
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))))
    }

    /// Root-mean-square of `value - reference` over samples in `[from, to)`.
    pub fn rms_error(&self, reference: f64, from: SimTime, to: SimTime) -> Option<f64> {
        let w = self.window(from, to);
        if w.is_empty() {
            return None;
        }
        let sum: f64 = w.iter().map(|v| (v - reference).powi(2)).sum();
        Some((sum / w.len() as f64).sqrt())
    }

    /// The first time at which `|value - reference| > bound`, if ever.
    pub fn first_excursion(&self, reference: f64, bound: f64) -> Option<SimTime> {
        self.iter()
            .find(|(_, v)| (v - reference).abs() > bound)
            .map(|(t, _)| t)
    }

    /// `true` if, for every sample at or after `from`, `|value - reference|`
    /// stays within `bound`.
    pub fn settled_within(&self, reference: f64, bound: f64, from: SimTime) -> bool {
        self.iter()
            .filter(|(t, _)| *t >= from)
            .all(|(_, v)| (v - reference).abs() <= bound)
    }
}

/// A set of synchronized series sharing one time base — a figure's worth of
/// signals (e.g. setpoint and estimated X/Y/Z).
///
/// # Examples
///
/// ```
/// use sim_core::series::SeriesBundle;
/// use sim_core::time::SimTime;
///
/// let mut b = SeriesBundle::new(&["x_sp", "x_est"]);
/// b.push_row(SimTime::from_millis(0), &[0.0, 0.01]);
/// assert_eq!(b.series("x_est").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeriesBundle {
    series: Vec<TimeSeries>,
}

impl SeriesBundle {
    /// Creates a bundle with one empty series per name.
    pub fn new(names: &[&str]) -> Self {
        SeriesBundle {
            series: names.iter().copied().map(TimeSeries::new).collect(),
        }
    }

    /// Reserves capacity for `additional` more rows in every series.
    pub fn reserve(&mut self, additional: usize) {
        for s in &mut self.series {
            s.reserve(additional);
        }
    }

    /// Appends one sample to every series at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of series.
    pub fn push_row(&mut self, t: SimTime, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "row width must match series count"
        );
        for (s, &v) in self.series.iter_mut().zip(values) {
            s.push(t, v);
        }
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// All series in insertion order.
    pub fn all(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Number of rows (samples per series).
    pub fn rows(&self) -> usize {
        self.series.first().map_or(0, TimeSeries::len)
    }

    /// Renders the bundle as CSV with a leading `time_s` column.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for s in &self.series {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        let n = self.rows();
        for i in 0..n {
            let t = self.series[0].times()[i];
            out.push_str(&format!("{:.4}", t.as_secs_f64()));
            for s in &self.series {
                out.push_str(&format!(",{:.6}", s.values()[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Summary statistics over a slice of samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty slice).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample (0 for an empty slice).
    pub min: f64,
    /// Largest sample (0 for an empty slice).
    pub max: f64,
}

impl Stats {
    /// Computes statistics over `samples`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sim_core::series::Stats;
    /// let s = Stats::of(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 3.0);
    /// ```
    pub fn of(samples: &[f64]) -> Stats {
        if samples.is_empty() {
            return Stats::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Stats {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn ramp() -> TimeSeries {
        let mut s = TimeSeries::new("ramp");
        for i in 0..100u64 {
            s.push(SimTime::from_millis(i * 10), i as f64 * 0.1);
        }
        s
    }

    #[test]
    fn value_at_holds_last_sample() {
        let s = ramp();
        assert_eq!(s.value_at(SimTime::from_millis(25)), Some(0.2));
        assert_eq!(s.value_at(SimTime::from_millis(0)), Some(0.0));
        let before = SimTime::ZERO;
        let mut empty = TimeSeries::new("e");
        assert_eq!(empty.value_at(before), None);
        empty.push(SimTime::from_millis(5), 1.0);
        assert_eq!(empty.value_at(SimTime::ZERO), None);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let s = ramp();
        let w = s.window(SimTime::from_millis(10), SimTime::from_millis(40));
        assert_eq!(w.len(), 3); // samples at 10, 20, 30 ms
    }

    #[test]
    fn max_abs_deviation_and_rms() {
        let s = ramp();
        let dev = s
            .max_abs_deviation(0.0, SimTime::ZERO, SimTime::from_secs(10))
            .unwrap();
        assert!((dev - 9.9).abs() < 1e-9);
        let rms = s
            .rms_error(0.0, SimTime::ZERO, SimTime::from_secs(10))
            .unwrap();
        assert!(rms > 0.0 && rms < dev);
    }

    #[test]
    fn first_excursion_finds_threshold_crossing() {
        let s = ramp();
        let t = s.first_excursion(0.0, 5.0).unwrap();
        assert_eq!(t, SimTime::from_millis(510));
        assert!(s.first_excursion(0.0, 100.0).is_none());
    }

    #[test]
    fn settled_within_checks_tail() {
        let mut s = TimeSeries::new("sig");
        s.push(SimTime::from_secs(0), 5.0);
        s.push(SimTime::from_secs(1), 0.05);
        s.push(SimTime::from_secs(2), -0.02);
        assert!(s.settled_within(0.0, 0.1, SimTime::from_secs(1)));
        assert!(!s.settled_within(0.0, 0.1, SimTime::ZERO));
    }

    /// The ordering assert is compiled out of release builds (hot path);
    /// the guard below keeps the should_panic test debug-only.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn push_rejects_time_regression() {
        let mut s = TimeSeries::new("bad");
        s.push(SimTime::from_millis(10), 1.0);
        s.push(SimTime::from_millis(5), 2.0);
    }

    #[test]
    fn bundle_roundtrips_csv() {
        let mut b = SeriesBundle::new(&["a", "b"]);
        let mut t = SimTime::ZERO;
        for i in 0..3 {
            b.push_row(t, &[i as f64, -(i as f64)]);
            t += SimDuration::from_millis(100);
        }
        let csv = b.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,a,b");
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("0.1000,1.000000,-1.000000"));
    }

    #[test]
    fn stats_of_constant_signal() {
        let s = Stats::of(&[4.0; 8]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.count, 8);
    }
}
