//! Simulation time and duration types.
//!
//! All simulation time is kept as an integer number of nanoseconds since the
//! start of the run. Integer time makes the co-simulation deterministic: two
//! components that schedule work "every 2.5 ms" will agree exactly on the
//! tick boundaries, with no floating-point drift over long runs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// `x.round() as u64` for non-negative `x`, without the libm `round` call
/// (the baseline x86-64 target lowers `f64::round` to a library call, and
/// this sits on the per-packet/per-quantum hot path).
///
/// Bit-identical to `x.round() as u64` for every `x < 2^53`: the integer
/// part of such an `x` converts to `f64` exactly, so the fractional
/// remainder is computed exactly and the half-away-from-zero tie-break
/// matches `round`. Values at or above 2^53 (≈ 104 simulated days in
/// nanoseconds) fall back to `round`.
#[inline]
fn round_nonneg_to_u64(x: f64) -> u64 {
    debug_assert!(x >= 0.0);
    if x < 9_007_199_254_740_992.0 {
        let t = x as u64;
        if x - t as f64 >= 0.5 {
            t + 1
        } else {
            t
        }
    } else {
        x.round() as u64
    }
}

/// An instant in simulation time, in nanoseconds since the start of the run.
///
/// # Examples
///
/// ```
/// use sim_core::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use sim_core::time::SimDuration;
///
/// let period = SimDuration::from_hz(250.0);
/// assert_eq!(period.as_nanos(), 4_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for deadlines that are never expected to trigger.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the start of the run.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the start of the run.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime(round_nonneg_to_u64(secs * NANOS_PER_SEC as f64))
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the start of the run (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the start of the run (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the run as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Rounds down to a multiple of `quantum` since the start of the run.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn align_down(self, quantum: SimDuration) -> SimTime {
        assert!(quantum.0 > 0, "quantum must be non-zero");
        SimTime(self.0 - self.0 % quantum.0)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration(round_nonneg_to_u64(secs * NANOS_PER_SEC as f64))
    }

    /// The period of a cycle repeating at `hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "invalid frequency: {hz}");
        SimDuration(round_nonneg_to_u64(NANOS_PER_SEC as f64 / hz))
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The repetition frequency of a cycle with this period, in hertz.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    pub fn as_hz(self) -> f64 {
        assert!(self.0 > 0, "zero duration has no frequency");
        NANOS_PER_SEC as f64 / self.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration(round_nonneg_to_u64(self.0 as f64 * factor))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::excessive_precision)] // the edge cases need every digit
    fn fast_round_matches_libm_round() {
        // Ties, near-ties, representability edges, and the 2^53 fallback.
        let cases = [
            0.0,
            0.25,
            0.5,
            0.49999999999999994, // largest f64 < 0.5
            0.9999999999999999,
            1.5,
            2.5,
            1234.4999999999999,
            1234.5,
            1e9,
            123_456_789.500_000_1,
            4_503_599_627_370_495.5, // 2^52 - 0.5
            9_007_199_254_740_991.0, // 2^53 - 1
            9_007_199_254_740_993.0, // above the exact-integer range
            1.8e18,
        ];
        for &x in &cases {
            assert_eq!(
                round_nonneg_to_u64(x),
                x.round() as u64,
                "mismatch for {x:e}"
            );
        }
    }

    #[test]
    fn time_roundtrips_units() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(0.25).as_millis(), 250);
    }

    #[test]
    fn duration_from_hz_is_exact_for_common_rates() {
        assert_eq!(SimDuration::from_hz(250.0).as_micros(), 4_000);
        assert_eq!(SimDuration::from_hz(400.0).as_micros(), 2_500);
        assert_eq!(SimDuration::from_hz(50.0).as_millis(), 20);
        assert_eq!(SimDuration::from_hz(10.0).as_millis(), 100);
        assert!((SimDuration::from_hz(400.0).as_hz() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_millis(10));
        assert_eq!(
            SimDuration::from_millis(10) * 3,
            SimDuration::from_millis(30)
        );
        assert_eq!(
            SimDuration::from_millis(10) / SimDuration::from_millis(3),
            3
        );
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn align_down_rounds_to_quantum() {
        let t = SimTime::from_nanos(1_234_567);
        let q = SimDuration::from_micros(100);
        assert_eq!(t.align_down(q), SimTime::from_nanos(1_200_000));
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn from_hz_rejects_zero() {
        let _ = SimDuration::from_hz(0.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000µs");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
