//! Deterministic discrete-time simulation kernel for the ContainerDrone
//! reproduction.
//!
//! This crate holds the foundations shared by every other crate in the
//! workspace:
//!
//! * [`time`] — integer nanosecond [`SimTime`]/[`SimDuration`] so all
//!   subsystems agree exactly on tick boundaries,
//! * [`rng`] — an in-crate xoshiro256** PRNG with derived per-subsystem
//!   streams, so a given seed reproduces a run bit-for-bit,
//! * [`event`] — a stable, time-ordered event queue for scripted actions,
//! * [`series`] — time-series recording and the trajectory metrics used to
//!   compare runs against the paper's figures.
//!
//! # Examples
//!
//! ```
//! use sim_core::prelude::*;
//!
//! let mut rng = Rng::derive(42, "demo");
//! let mut log = TimeSeries::new("noise");
//! let mut t = SimTime::ZERO;
//! let dt = SimDuration::from_millis(10);
//! while t < SimTime::from_millis(100) {
//!     log.push(t, rng.normal(0.0, 1.0));
//!     t += dt;
//! }
//! assert_eq!(log.len(), 10);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod series;
pub mod time;

pub use event::{EventId, EventQueue};
pub use rng::Rng;
pub use series::{SeriesBundle, Stats, TimeSeries};
pub use time::{SimDuration, SimTime};

/// Convenient glob import of the kernel types.
pub mod prelude {
    pub use crate::event::{EventId, EventQueue};
    pub use crate::rng::Rng;
    pub use crate::series::{SeriesBundle, Stats, TimeSeries};
    pub use crate::time::{SimDuration, SimTime};
}
