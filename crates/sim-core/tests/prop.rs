//! Property-based tests for the simulation kernel: event-queue ordering,
//! RNG ranges, and time-series metric consistency.

use proptest::prelude::*;
use sim_core::prelude::*;
use sim_core::rng::Rng as SimRng;

proptest! {
    /// Events always pop in non-decreasing time order with FIFO
    /// tie-breaking, whatever the insertion order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let popped: Vec<(SimTime, usize)> =
            q.pop_due(SimTime::from_secs(10)).collect();
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn event_queue_cancellation(
        times in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_nanos(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if cancel_mask[*i % cancel_mask.len()] {
                q.cancel(*id);
            } else {
                expected.push(*i);
            }
        }
        let mut popped: Vec<usize> =
            q.pop_due(SimTime::from_secs(1)).map(|(_, i)| i).collect();
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// `next_range(n)` is always `< n`; `uniform` respects its bounds.
    #[test]
    fn rng_ranges(seed in any::<u64>(), n in 1u64..1_000_000, lo in -1e6f64..1e6) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_range(n) < n);
            let hi = lo + 10.0;
            let x = rng.uniform(lo, hi);
            prop_assert!((lo..hi).contains(&x));
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Derived streams are reproducible and sensitive to the salt.
    #[test]
    fn rng_derivation(seed in any::<u64>()) {
        let mut a1 = SimRng::derive(seed, "alpha");
        let mut a2 = SimRng::derive(seed, "alpha");
        let mut b = SimRng::derive(seed, "beta");
        let va: Vec<u64> = (0..16).map(|_| a1.next_u64()).collect();
        let va2: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_eq!(&va, &va2);
        prop_assert_ne!(&va, &vb);
    }

    /// Time-series metrics agree with brute-force recomputation.
    #[test]
    fn series_metrics_consistent(values in prop::collection::vec(-100.0f64..100.0, 1..200)) {
        let mut s = TimeSeries::new("sig");
        for (i, &v) in values.iter().enumerate() {
            s.push(SimTime::from_millis(i as u64), v);
        }
        let from = SimTime::ZERO;
        let to = SimTime::from_secs(10);
        let dev = s.max_abs_deviation(0.0, from, to).unwrap();
        let brute = values.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        prop_assert!((dev - brute).abs() < 1e-12);

        let rms = s.rms_error(0.0, from, to).unwrap();
        let brute_rms =
            (values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt();
        prop_assert!((rms - brute_rms).abs() < 1e-9);
        // RMS never exceeds the max deviation.
        prop_assert!(rms <= dev + 1e-12);
    }

    /// `value_at` returns the sample-and-hold value.
    #[test]
    fn series_value_at_holds(values in prop::collection::vec(-10.0f64..10.0, 2..50), probe in 0usize..49) {
        let mut s = TimeSeries::new("sig");
        for (i, &v) in values.iter().enumerate() {
            s.push(SimTime::from_millis(i as u64 * 10), v);
        }
        let idx = probe.min(values.len() - 1);
        // Probe halfway between sample idx and idx+1: must hold sample idx.
        let t = SimTime::from_millis(idx as u64 * 10 + 5);
        prop_assert_eq!(s.value_at(t), Some(values[idx]));
    }

    /// SimTime/SimDuration arithmetic is consistent with integers.
    #[test]
    fn time_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let t = SimTime::from_nanos(a) + SimDuration::from_nanos(b);
        prop_assert_eq!(t.as_nanos(), a + b);
        prop_assert_eq!(t - SimTime::from_nanos(a), SimDuration::from_nanos(b));
        let d = SimDuration::from_nanos(a.max(b)) - SimDuration::from_nanos(a.min(b));
        prop_assert_eq!(d.as_nanos(), a.abs_diff(b));
    }
}
