//! The cd-lint gate as a workspace test: `cargo test` fails if any
//! source file violates the determinism/robustness rules — the same
//! check `cargo run -p cd-lint` and the CI lint job perform.

use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = cd_lint::lint_workspace(root);
    assert!(
        findings.is_empty(),
        "cd-lint found {} violation(s):\n{}",
        findings.len(),
        cd_lint::render(&findings)
    );
}
