//! Flood-floor regression pins for the Figure 7 UDP-flood scenario.
//!
//! PR 10 made flood spans first-class arithmetic objects: the executor
//! leaps through the attack window in closed form and the network
//! settles each span's datagrams in bulk. Two properties keep that from
//! silently rotting:
//!
//! - **Leap coverage floor** — the flood window must stay *leapable*.
//!   If a future change reintroduces per-quantum fallback inside the
//!   window (a driver losing span capability, a dispatch change that
//!   declines the fair ladder), coverage collapses from ~70 % toward
//!   the ~19 % a stepped flood window yields, and the first test fails
//!   long before anyone reads a BENCH file.
//! - **Bulk equivalence** — closed-form settlement must be a pure
//!   mechanical speedup. The second test runs the same flight on both
//!   settlement paths and demands equality on every observable counter
//!   *including* the executor stats (bulk may not change what leaps).
//!
//! The fleet-level bulk pins live in `crates/fleet/tests/leap.rs`.

use containerdrone::framework::{Scenario, ScenarioConfig};
use containerdrone::sim::time::{SimDuration, SimTime};

/// The full paper-length flood: 30 s, onset at 8 s, Simplex switch
/// shortly after — the BENCH `fig7-udp-flood` row's exact configuration.
fn fig7_full() -> ScenarioConfig {
    ScenarioConfig::fig7().with_duration(SimDuration::from_secs(30))
}

/// The time-leap executor must advance at least two thirds of a full
/// Figure 7 flight's quanta in closed form or replay (measured: ~70 %;
/// a healthy flight leaps ~73 %, so the flood window costs only a few
/// points of coverage — that closeness *is* the tentpole).
#[test]
fn fig7_leap_coverage_holds_the_floor() {
    let result = Scenario::new(fig7_full()).run();
    assert!(result.switch_time.is_some(), "monitor never switched");
    assert!(
        result.quanta_leaped * 3 >= result.sim_steps * 2,
        "fig7 leap coverage fell below 2/3: {} of {} quanta",
        result.quanta_leaped,
        result.sim_steps
    );
}

/// Bulk flood-span settlement vs the per-packet reference path, on the
/// leap executor, over the full flood: every observable — telemetry,
/// parser/socket counters, attack log, task report — and every executor
/// stat must be byte-identical. Bulk changes delivery mechanics only.
#[test]
fn fig7_bulk_and_per_packet_settlement_agree() {
    let run = |bulk: bool| {
        let cfg = fig7_full();
        let end = SimTime::ZERO + cfg.duration;
        let mut run = Scenario::new(cfg).start();
        run.set_bulk(bulk);
        run.advance_to_leap(end);
        run.finish()
    };
    let bulk = run(true);
    let nobulk = run(false);

    assert_eq!(
        bulk.telemetry.to_csv(),
        nobulk.telemetry.to_csv(),
        "telemetry CSV diverged between settlement paths"
    );
    assert_eq!(bulk.sim_steps, nobulk.sim_steps, "sim_steps");
    assert_eq!(
        bulk.quanta_leaped, nobulk.quanta_leaped,
        "bulk must not change what the executor leaps"
    );
    assert_eq!(bulk.crash, nobulk.crash, "crash");
    assert_eq!(bulk.switch_time, nobulk.switch_time, "switch");
    assert_eq!(bulk.monitor_events, nobulk.monitor_events, "monitor events");
    assert_eq!(bulk.attack_log, nobulk.attack_log, "attack log");
    assert_eq!(bulk.flood_sent, nobulk.flood_sent, "flood packets offered");
    assert_eq!(
        bulk.hce_parser_stats, nobulk.hce_parser_stats,
        "parser stats"
    );
    assert_eq!(
        bulk.rx_socket_stats, nobulk.rx_socket_stats,
        "rx socket stats"
    );
    assert_eq!(
        bulk.net_packets_sent, nobulk.net_packets_sent,
        "net packets"
    );
    assert_eq!(bulk.task_report, nobulk.task_report, "task report");

    // Non-degeneracy: the flood really ran and the bulk path really had
    // spans to settle.
    assert!(bulk.switch_time.is_some(), "monitor never switched");
    assert!(
        bulk.flood_sent > 300_000,
        "flood offered only {} packets over the window",
        bulk.flood_sent
    );
}
