//! Reproducibility: the same seed must give a bit-identical run; different
//! seeds must differ; and results must be stable across a seed sweep.

use containerdrone::framework::{Scenario, ScenarioConfig};
use containerdrone::sim::time::{SimDuration, SimTime};

fn fingerprint(cfg: ScenarioConfig) -> String {
    Scenario::new(cfg).run().telemetry.to_csv()
}

#[test]
fn same_seed_bit_identical_trajectory() {
    let cfg = ScenarioConfig::fig6().with_duration(SimDuration::from_secs(16));
    let a = fingerprint(cfg.clone());
    let b = fingerprint(cfg);
    assert_eq!(a, b, "identical seeds must replay identically");
}

#[test]
fn different_seed_different_trajectory() {
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(5));
    let a = fingerprint(base.clone().with_seed(1));
    let b = fingerprint(base.with_seed(2));
    assert_ne!(a, b);
}

#[test]
fn memguard_differential_holds_across_seeds() {
    // The fig4-vs-fig5 outcome must not hinge on one lucky seed.
    for seed in [7, 99, 12345] {
        let fig4 = Scenario::new(ScenarioConfig::fig4().with_seed(seed)).run();
        let fig5 = Scenario::new(ScenarioConfig::fig5().with_seed(seed)).run();
        // Depending on drift direction a given seed may take longer than
        // the 30 s window to reach a wall; "lost position control" (metres
        // of deviation or an outright crash) is the seed-robust criterion.
        let fig4_dev = fig4.max_deviation(SimTime::from_secs(10), SimTime::from_secs(30));
        assert!(
            fig4.crashed() || fig4_dev > 2.0,
            "fig4 must lose control for seed {seed} (deviation {fig4_dev})"
        );
        assert!(!fig5.crashed(), "fig5 must survive for seed {seed}");
        let fig5_dev = fig5.max_deviation(SimTime::from_secs(10), SimTime::from_secs(30));
        assert!(
            fig5_dev < 0.5,
            "fig5 must hold station for seed {seed} ({fig5_dev})"
        );
    }
}

#[test]
fn failover_recovery_holds_across_seeds() {
    for seed in [11, 222] {
        let r = Scenario::new(ScenarioConfig::fig6().with_seed(seed)).run();
        assert!(!r.crashed(), "seed {seed} crashed");
        assert!(r.switch_time.is_some(), "seed {seed} never switched");
        let settled = r.max_deviation(SimTime::from_secs(25), SimTime::from_secs(30));
        assert!(settled < 0.3, "seed {seed} settled at {settled}");
    }
}
