//! Ablation tests: each protection mechanism individually carries its
//! weight (the design-choice validations DESIGN.md commits to).

use containerdrone::attacks::{AttackEvent, CpuHog};
use containerdrone::framework::{Scenario, ScenarioConfig};
use containerdrone::sim::time::SimTime;

#[test]
fn cpu_hog_confined_by_container_is_harmless() {
    let cfg = ScenarioConfig::builder()
        .attack_at(
            SimTime::from_secs(8),
            AttackEvent::CpuHog(CpuHog::aggressive()),
        )
        .build();
    let result = Scenario::new(cfg).run();
    assert!(!result.crashed(), "confined CPU hog must not hurt the HCE");
    // The safety/driver tasks never miss.
    for (name, stats) in &result.task_report {
        if name == "sensor-driver" || name == "motor-driver" || name == "safety-controller" {
            assert_eq!(stats.skips, 0, "{name} skipped {} jobs", stats.skips);
        }
    }
}

#[test]
fn cpu_hog_unconfined_with_rt_priority_starves_the_hce() {
    // Ablation: drop the cpuset + no-RT restrictions. Four FIFO-95
    // spinners outrank the FIFO-20 safety controller everywhere.
    let cfg = ScenarioConfig::builder()
        .attack_at(
            SimTime::from_secs(8),
            AttackEvent::CpuHog(CpuHog::aggressive()),
        )
        .cpu_isolation(false)
        .build();
    let result = Scenario::new(cfg).run();
    let safety = result
        .task_report
        .iter()
        .find(|(n, _)| n == "safety-controller")
        .expect("safety controller runs in simplex mode");
    assert!(
        safety.1.skips > 1000,
        "unconfined RT hog must starve the safety controller, skips {}",
        safety.1.skips
    );
}

#[test]
fn monitor_disabled_leaves_controller_kill_unanswered() {
    // Ablation: without the security monitor, the fig6 attack leaves the
    // vehicle on stale commands forever.
    let mut cfg = ScenarioConfig::fig6();
    cfg.framework.protections.monitor = false;
    let result = Scenario::new(cfg).run();
    assert!(result.switch_time.is_none(), "no monitor, no switch");
    assert!(
        result.crashed(),
        "stale actuator commands must end in a crash without the monitor"
    );
}

#[test]
fn iptables_bounds_rx_thread_cpu_load() {
    // With the rate limit, the rx thread processes at most ~iptables_pps
    // jobs/s; without it, the full flood hits the CPU.
    let with = Scenario::new(ScenarioConfig::fig7()).run();
    let mut cfg = ScenarioConfig::fig7();
    cfg.framework.protections.iptables = false;
    let without = Scenario::new(cfg).run();

    let rx_busy = |r: &containerdrone::framework::ScenarioResult| {
        r.task_report
            .iter()
            .find(|(n, _)| n == "rx-thread")
            .map(|(_, s)| s.busy_time)
            .unwrap()
    };
    assert!(
        rx_busy(&without) > rx_busy(&with) * 3,
        "unlimited flood must cost far more rx CPU: {} vs {}",
        rx_busy(&without),
        rx_busy(&with)
    );
    // Both still survive thanks to the monitor — defense in depth.
    assert!(!with.crashed() && !without.crashed());
}

#[test]
fn flood_garbage_is_rejected_by_the_parser_not_the_controller() {
    let result = Scenario::new(ScenarioConfig::fig7()).run();
    // Every flood datagram that reached the rx thread was skipped as
    // garbage; no frame ever decoded from attack bytes.
    assert!(result.hce_parser_stats.bytes_skipped > 0);
    assert_eq!(
        result.hce_parser_stats.crc_errors, 0,
        "zeros never fake a CRC"
    );
}
