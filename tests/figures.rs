//! End-to-end reproduction tests for the paper's Figures 4–7.
//!
//! Each test runs the exact scenario preset the bench harness uses and
//! asserts the *shape* of the paper's result: who crashes, who recovers,
//! which mechanism fires, and in which order.

use containerdrone::framework::{OutputSource, Scenario, ScenarioConfig};
use containerdrone::sim::time::SimTime;

#[test]
fn fig4_memory_attack_without_memguard_crashes() {
    let result = Scenario::new(ScenarioConfig::fig4()).run();
    let attack = result.attack_onset.expect("fig4 has an attack");

    // Healthy before the attack.
    let pre = result.max_deviation(SimTime::from_secs(2), attack);
    assert!(pre < 0.2, "pre-attack deviation {pre} m");

    // Crash after it — the paper's drone "crashes shortly after".
    let crash = result.crash.expect("fig4 must crash");
    assert!(crash.time > attack, "crash follows the attack");

    // The flight stack was starved: massive overruns on the HCE pilot task.
    let stack = result
        .task_report
        .iter()
        .find(|(name, _)| name == "hce-flight-stack")
        .expect("flight stack task exists");
    assert!(stack.1.skips > 1000, "stack skips {}", stack.1.skips);
}

#[test]
fn fig5_memory_attack_with_memguard_survives() {
    let result = Scenario::new(ScenarioConfig::fig5()).run();
    let attack = result.attack_onset.unwrap();

    assert!(!result.crashed(), "MemGuard must keep the drone alive");
    // "The drone oscillates for a short time but then managed to stabilize
    // itself": bounded deviation throughout the attack.
    let post = result.max_deviation(attack, SimTime::from_secs(30));
    assert!(post < 0.5, "post-attack deviation {post} m");

    // The flight stack keeps (essentially) its full rate.
    let stack = result
        .task_report
        .iter()
        .find(|(name, _)| name == "hce-flight-stack")
        .unwrap();
    assert!(stack.1.skips < 50, "stack skips {}", stack.1.skips);
}

#[test]
fn fig4_vs_fig5_is_the_memguard_differential() {
    // The scientific claim: same attack, same calibration, the only change
    // is MemGuard — and it flips the outcome.
    let without = Scenario::new(ScenarioConfig::fig4()).run();
    let with = Scenario::new(ScenarioConfig::fig5()).run();
    assert!(without.crashed());
    assert!(!with.crashed());
}

#[test]
fn fig6_controller_kill_triggers_interval_rule_and_recovery() {
    let result = Scenario::new(ScenarioConfig::fig6()).run();
    let attack = result.attack_onset.unwrap();

    assert!(!result.crashed(), "safety controller must save the drone");

    // The receive-interval rule fires (the paper: "detects that the output
    // from CCE has not been received for some time").
    let switch = result.switch_time.expect("simplex switch must happen");
    assert!(switch > attack);
    assert!(
        switch < attack + containerdrone::sim::time::SimDuration::from_secs(1),
        "detection within the interval threshold"
    );
    assert_eq!(result.monitor_events[0].rule, "receive-interval");

    // Visible excursion while commands were stale, then recovery: the last
    // five seconds are back near the setpoint.
    let excursion = result.max_deviation(
        attack,
        switch + containerdrone::sim::time::SimDuration::from_secs(3),
    );
    assert!(
        excursion > 0.1,
        "kill must visibly disturb the drone, got {excursion}"
    );
    let settled = result.max_deviation(SimTime::from_secs(25), SimTime::from_secs(30));
    assert!(settled < 0.25, "recovered deviation {settled} m");

    // After the switch the safety controller owns the actuators.
    let source = result
        .telemetry
        .signal("source")
        .unwrap()
        .value_at(SimTime::from_secs(29))
        .unwrap();
    assert_eq!(source, 1.0, "safety controller active at the end");
}

#[test]
fn fig7_udp_flood_triggers_switch_and_recovery() {
    let result = Scenario::new(ScenarioConfig::fig7()).run();
    let attack = result.attack_onset.unwrap();

    assert!(!result.crashed(), "drone recovers from the flood");
    let switch = result.switch_time.expect("flood must trip the monitor");
    assert!(switch > attack);

    // The flood really flooded: far more packets offered than legitimate
    // traffic, with drops at the rate limiter.
    assert!(
        result.flood_sent > 10_000,
        "flood sent {}",
        result.flood_sent
    );
    assert!(
        result.rx_socket_stats.dropped_ratelimit > 1_000,
        "iptables dropped {}",
        result.rx_socket_stats.dropped_ratelimit
    );

    // Recovery at the end.
    let settled = result.max_deviation(SimTime::from_secs(25), SimTime::from_secs(30));
    assert!(settled < 0.25, "recovered deviation {settled} m");
}

#[test]
fn healthy_flight_stays_on_station_with_complex_controller() {
    let result = Scenario::new(ScenarioConfig::healthy()).run();
    assert!(!result.crashed());
    assert!(result.switch_time.is_none(), "no spurious failover");
    let dev = result.max_deviation(SimTime::from_secs(2), SimTime::from_secs(30));
    assert!(dev < 0.15, "healthy deviation {dev} m");
    // The complex controller stays in charge throughout.
    let source = result
        .telemetry
        .signal("source")
        .unwrap()
        .values()
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    assert_eq!(source, 0.0);
    let _ = OutputSource::Complex; // (type used in assertions above)
}

#[test]
fn fig6_excursion_is_larger_than_healthy_wobble() {
    // The paper's Fig 6 shows a pronounced excursion between the kill and
    // re-stabilization; make sure ours is distinguishable from noise.
    let healthy = Scenario::new(ScenarioConfig::healthy()).run();
    let fig6 = Scenario::new(ScenarioConfig::fig6()).run();
    let h = healthy.max_deviation(SimTime::from_secs(10), SimTime::from_secs(20));
    let k = fig6.max_deviation(SimTime::from_secs(12), SimTime::from_secs(20));
    assert!(k > 3.0 * h, "kill excursion {k} vs healthy wobble {h}");
}
