//! Variant flights: liveness heartbeats, GNSS-grade positioning, and
//! threshold-sensitivity sweeps — robustness checks around the main
//! reproduction.

use containerdrone::framework::{Scenario, ScenarioConfig};
use containerdrone::sim::time::{SimDuration, SimTime};

#[test]
fn healthy_flight_delivers_heartbeats() {
    let result = Scenario::new(ScenarioConfig::healthy()).run();
    // 1 Hz for 30 s, minus pipeline warm-up jitter.
    assert!(
        (27..=31).contains(&(result.heartbeats_received as i64)),
        "heartbeats {}",
        result.heartbeats_received
    );
}

#[test]
fn controller_kill_stops_heartbeats_too() {
    let result = Scenario::new(ScenarioConfig::fig6()).run();
    // Killed at 12 s: only ~12 heartbeats ever arrive.
    assert!(
        (10..=13).contains(&(result.heartbeats_received as i64)),
        "heartbeats {}",
        result.heartbeats_received
    );
}

#[test]
fn gnss_grade_positioning_still_hovers_but_wobbles_more() {
    let vicon = Scenario::new(ScenarioConfig::healthy()).run();
    let gps = Scenario::new(ScenarioConfig::healthy().with_gps_positioning()).run();
    assert!(!gps.crashed(), "GNSS flight must stay up");
    assert!(gps.switch_time.is_none(), "no spurious failover on noise");
    let dev_vicon = vicon.max_deviation(SimTime::from_secs(2), SimTime::from_secs(30));
    let dev_gps = gps.max_deviation(SimTime::from_secs(2), SimTime::from_secs(30));
    assert!(
        dev_gps > 2.0 * dev_vicon,
        "GNSS noise must be visible: {dev_gps} vs Vicon {dev_vicon}"
    );
    assert!(dev_gps < 1.5, "but still bounded: {dev_gps}");
}

#[test]
fn gnss_failover_detects_but_recovery_is_marginal() {
    // Under GNSS-grade position noise the monitor still detects the kill
    // and switches — but recovery from the handover transient with ±0.4 m
    // fix noise exceeds the conservative safety envelope: the takeover
    // wobble diverges. This is a *finding*, not a bug: position-hold
    // failover at the paper's fidelity depends on the mocap-grade
    // positioning its lab provides (documented in EXPERIMENTS.md).
    let result = Scenario::new(ScenarioConfig::fig6().with_gps_positioning()).run();
    let attack = result.attack_onset.unwrap();
    let switch = result.switch_time.expect("detection is noise-independent");
    assert!(switch > attack);
    // Under GNSS wobble either rule can fire first: the stale-command
    // upset may push the attitude error past its bound before the
    // interval timeout elapses.
    assert!(
        ["receive-interval", "attitude-error"].contains(&result.monitor_events[0].rule.as_str()),
        "unexpected rule {:?}",
        result.monitor_events[0].rule
    );
    // Pre-attack flight under GNSS was healthy — the failure is confined
    // to the post-switch recovery transient.
    let pre = result.max_deviation(SimTime::from_secs(2), attack);
    assert!(pre < 1.0, "pre-attack GNSS flight healthy, dev {pre}");
}

#[test]
fn interval_threshold_trades_latency_for_excursion() {
    // Sweep the receive-interval threshold on the fig6 attack: a larger
    // threshold means a longer stale-command window and a bigger
    // excursion (this is the sensitivity EXPERIMENTS.md discusses when
    // comparing our 0.4 m excursion with the paper's ~4 m).
    let mut excursions = Vec::new();
    for ms in [200u64, 400, 800] {
        let mut cfg = ScenarioConfig::fig6();
        cfg.framework.thresholds.max_receive_interval = SimDuration::from_millis(ms);
        // Disable the attitude rule so the interval rule alone determines
        // the switch time in this sweep.
        cfg.framework.thresholds.max_attitude_error = f64::INFINITY;
        let r = Scenario::new(cfg).run();
        assert!(!r.crashed(), "threshold {ms} ms crashed");
        assert!(r.switch_time.is_some(), "threshold {ms} ms never switched");
        let attack = r.attack_onset.unwrap();
        excursions.push(r.max_deviation(attack, SimTime::from_secs(30)));
    }
    assert!(
        excursions[0] < excursions[1] && excursions[1] < excursions[2],
        "excursion must grow with the threshold: {excursions:?}"
    );
}

#[test]
fn memguard_budget_extremes_behave() {
    // Tiny budget: protection plus almost no CCE bandwidth — still stable.
    let mut tight = ScenarioConfig::fig5();
    tight.framework.protections.memguard_budget = 0.01;
    let r = Scenario::new(tight).run();
    assert!(!r.crashed());

    // Budget ≈ whole bus: regulation is vacuous, the attack goes through
    // (equivalent to fig4's loss of control).
    let mut vacuous = ScenarioConfig::fig5();
    vacuous.framework.protections.memguard_budget = 0.95;
    let r = Scenario::new(vacuous).run();
    let dev = r.max_deviation(SimTime::from_secs(10), SimTime::from_secs(30));
    assert!(
        r.crashed() || dev > 1.0,
        "a vacuous budget must not protect: dev {dev}"
    );
}
