//! Time-leap executor equivalence: the event-driven fast path must be
//! byte-identical to the quantum-stepped reference executor on every
//! scenario family — healthy (the leap-heavy case), each paper figure,
//! and the spoof timeline (live emitters force per-quantum fallback).
//!
//! The fleet-level counterpart (swarm jams, external attacker nodes,
//! mixed adversarial campaigns, `--no-leap`) lives in
//! `crates/fleet/tests/adversarial.rs`.

use containerdrone::framework::{Scenario, ScenarioConfig};
use containerdrone::sim::time::SimDuration;

/// Runs `cfg` on both executors and asserts the observable results are
/// byte-identical; returns the leaped-quanta count for profile checks.
fn assert_leap_equivalent(cfg: ScenarioConfig, label: &str) -> u64 {
    let leap = Scenario::new(cfg.clone()).run();
    let stepped = Scenario::new(cfg).run_stepped();

    assert_eq!(
        leap.telemetry.to_csv(),
        stepped.telemetry.to_csv(),
        "{label}: telemetry CSV diverged"
    );
    assert_eq!(leap.sim_steps, stepped.sim_steps, "{label}: sim_steps");
    assert_eq!(leap.crash, stepped.crash, "{label}: crash");
    assert_eq!(leap.switch_time, stepped.switch_time, "{label}: switch");
    assert_eq!(
        leap.monitor_events, stepped.monitor_events,
        "{label}: monitor events"
    );
    assert_eq!(leap.attack_log, stepped.attack_log, "{label}: attack log");
    assert_eq!(leap.idle_rates, stepped.idle_rates, "{label}: idle rates");
    assert_eq!(
        leap.hce_parser_stats, stepped.hce_parser_stats,
        "{label}: parser stats"
    );
    assert_eq!(
        leap.rx_socket_stats, stepped.rx_socket_stats,
        "{label}: rx socket stats"
    );
    assert_eq!(
        leap.attack_packets, stepped.attack_packets,
        "{label}: attack packets"
    );
    assert_eq!(
        leap.heartbeats_received, stepped.heartbeats_received,
        "{label}: heartbeats"
    );
    assert_eq!(
        leap.net_packets_sent, stepped.net_packets_sent,
        "{label}: net packets"
    );
    assert_eq!(
        leap.task_report, stepped.task_report,
        "{label}: task report"
    );
    assert_eq!(
        stepped.quanta_leaped, 0,
        "{label}: reference executor must never leap"
    );
    leap.quanta_leaped
}

#[test]
fn healthy_run_leaps_and_matches_stepped() {
    let cfg = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(5));
    let leaped = assert_leap_equivalent(cfg, "healthy");
    assert!(
        leaped > 0,
        "a healthy flight has idle spans the executor must leap"
    );
}

#[test]
fn fig4_flood_unprotected_matches_stepped() {
    let cfg = ScenarioConfig::fig4().with_duration(SimDuration::from_secs(8));
    assert_leap_equivalent(cfg, "fig4");
}

#[test]
fn fig5_flood_protected_matches_stepped() {
    let cfg = ScenarioConfig::fig5().with_duration(SimDuration::from_secs(8));
    assert_leap_equivalent(cfg, "fig5");
}

#[test]
fn fig6_failover_matches_stepped() {
    let cfg = ScenarioConfig::fig6().with_duration(SimDuration::from_secs(16));
    assert_leap_equivalent(cfg, "fig6");
}

#[test]
fn fig7_matches_stepped() {
    // 12 s covers flood onset (8 s), the simplex switch (~8.6 s) and a
    // multi-second stretch of post-switch flood steady state — the
    // window where the flood-span fast path batches the emitter's
    // per-quantum traffic. 8 s would stop at onset and never exercise
    // it.
    let cfg = ScenarioConfig::fig7().with_duration(SimDuration::from_secs(12));
    let leaped = assert_leap_equivalent(cfg, "fig7");
    // 0–8 s healthy (leaps), 8 s–switch per-quantum (rx alive), then
    // flood spans: well over half the 240k quanta must leap.
    assert!(
        leaped > 120_000,
        "flood window must leap via flood spans, leaped only {leaped}"
    );
}

#[test]
fn spoof_timeline_matches_stepped() {
    let cfg = ScenarioConfig::spoof().with_duration(SimDuration::from_secs(8));
    assert_leap_equivalent(cfg, "spoof");
}

#[test]
fn crash_window_matches_stepped() {
    // fig4 full-length ends in lost control for the default seed; the
    // 1 s post-crash window and early termination must agree exactly.
    let cfg = ScenarioConfig::fig4();
    let leap = Scenario::new(cfg.clone()).run();
    let stepped = Scenario::new(cfg).run_stepped();
    assert_eq!(leap.crash, stepped.crash);
    assert_eq!(leap.sim_steps, stepped.sim_steps);
    assert_eq!(leap.telemetry.to_csv(), stepped.telemetry.to_csv());
}
