//! End-to-end reproduction tests for the paper's Tables I and II.

use containerdrone::containers::{
    spawn_system_background, Container, ContainerConfig, Vm, VmConfig,
};
use containerdrone::framework::{Scenario, ScenarioConfig};
use containerdrone::sched::{Machine, MachineConfig};
use containerdrone::sim::time::{SimDuration, SimTime};
use virt_net::net::Network;

#[test]
fn table1_stream_rates_sizes_and_ports() {
    let result =
        Scenario::new(ScenarioConfig::healthy().with_duration(SimDuration::from_secs(10))).run();

    // Expected rows straight from Table I of the paper.
    let expected: &[(&str, f64, f64, u16)] = &[
        ("IMU", 250.0, 52.0, 14660),
        ("Barometer", 50.0, 32.0, 14660),
        ("GPS", 10.0, 44.0, 14660),
        ("RC", 50.0, 50.0, 14660),
        ("Motor Output", 400.0, 29.0, 14600),
    ];
    for (name, rate, size, port) in expected {
        let row = result
            .streams
            .iter()
            .find(|s| s.name == *name)
            .unwrap_or_else(|| panic!("stream {name} missing"));
        assert!(
            (row.measured_hz - rate).abs() / rate < 0.02,
            "{name}: measured {} Hz vs nominal {rate} Hz",
            row.measured_hz
        );
        assert_eq!(row.frame_bytes, *size, "{name} frame size");
        assert_eq!(row.port, *port, "{name} port");
    }
}

/// Measures per-core idle rates over 5 s after 1 s of warm-up, the way the
/// paper's Table II does.
fn measure_idle(setup: impl FnOnce(&mut Machine, &mut Network)) -> Vec<f64> {
    let mut machine = Machine::new(MachineConfig::default());
    let mut net = Network::new();
    spawn_system_background(&mut machine);
    setup(&mut machine, &mut net);
    let mut ev = Vec::new();
    machine.step_until(SimTime::from_secs(1), &mut ev);
    machine.reset_accounting();
    machine.step_until(SimTime::from_secs(6), &mut ev);
    machine.idle_rates()
}

#[test]
fn table2_idle_rate_ordering_native_container_vm() {
    let native = measure_idle(|_, _| {});
    let container = measure_idle(|m, n| {
        let host = n.add_namespace("host");
        let _c = Container::create(m, n, host, ContainerConfig::cce(3));
    });
    let vm = measure_idle(|m, _| {
        Vm::start(m, VmConfig::default());
    });

    // Shape of Table II: container ≈ native ≫ VM, on every core.
    for core in 0..4 {
        assert!(
            (native[core] - container[core]).abs() < 0.02,
            "core {core}: container {} vs native {}",
            container[core],
            native[core]
        );
        assert!(
            vm[core] < container[core] - 0.05,
            "core {core}: vm {} must idle much less than container {}",
            vm[core],
            container[core]
        );
    }

    // Calibrated magnitudes (paper: native 0.95/0.99/0.99/0.99,
    // container 0.95/0.99/0.99/0.98, VM 0.86/0.83/0.81/0.77).
    assert!((native[0] - 0.95).abs() < 0.02, "native cpu0 {}", native[0]);
    assert!(native[1] > 0.98 && native[2] > 0.98 && native[3] > 0.98);
    assert!(
        vm.iter().all(|&r| (0.70..0.92).contains(&r)),
        "vm idle {vm:?}"
    );
}

#[test]
fn table2_vm_overhead_exceeds_container_overhead_in_total() {
    let native = measure_idle(|_, _| {});
    let container = measure_idle(|m, n| {
        let host = n.add_namespace("host");
        let _c = Container::create(m, n, host, ContainerConfig::cce(3));
    });
    let vm = measure_idle(|m, _| {
        Vm::start(m, VmConfig::default());
    });
    let total = |v: &[f64]| -> f64 { v.iter().sum() };
    let container_cost = total(&native) - total(&container);
    let vm_cost = total(&native) - total(&vm);
    assert!(
        vm_cost > 10.0 * container_cost.max(0.001),
        "vm {vm_cost} vs container {container_cost}"
    );
}
