//! Multi-attack timeline tests: composed attack campaigns in one run,
//! builder/preset equivalence, and attack-window (cease-fire) semantics.

use containerdrone::prelude::*;
use containerdrone::sim::time::{SimDuration, SimTime};

/// The ISSUE's canonical composed campaign: memory hog at 10 s, UDP flood
/// layered on at 15 s, controller kill at 20 s — one flight.
fn hog_flood_kill() -> ScenarioConfig {
    ScenarioConfig::builder()
        .pilot(Pilot::CceSimplex)
        .attack_at(
            SimTime::from_secs(10),
            AttackEvent::MemoryHog(BandwidthHog::isolbench()),
        )
        .attack_at(
            SimTime::from_secs(15),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .attack_at(SimTime::from_secs(20), AttackEvent::KillComplex)
        .build()
}

#[test]
fn hog_flood_kill_campaign_fails_over_in_order() {
    let result = Scenario::new(hog_flood_kill()).run();

    // All three attacks fired, in schedule order.
    let log: Vec<&str> = result.attack_log.iter().map(|(_, n)| *n).collect();
    assert_eq!(log, ["memory-hog", "udp-flood", "kill-complex"]);
    assert_eq!(result.attack_log[0].0, SimTime::from_secs(10));
    assert_eq!(result.attack_log[2].0, SimTime::from_secs(20));
    assert_eq!(result.attack_onset, Some(SimTime::from_secs(10)));

    // MemGuard + iptables ride out the first two vectors: no switch
    // before the kill.
    let switch = result.switch_time.expect("the kill must force a failover");
    assert!(
        switch > SimTime::from_secs(20),
        "premature switch at {switch}"
    );
    assert!(
        switch < SimTime::from_secs(21),
        "detection within the interval threshold, got {switch}"
    );
    assert_eq!(result.monitor_events[0].rule, "receive-interval");

    // The flood really ran (5 s × 20 kpps offered) and the safety
    // controller recovers the vehicle.
    assert!(
        result.flood_sent > 50_000,
        "flood sent {}",
        result.flood_sent
    );
    assert!(
        !result.crashed(),
        "the protected flight survives the campaign"
    );
    let settled = result.max_deviation(SimTime::from_secs(27), SimTime::from_secs(30));
    assert!(settled < 1.0, "recovered deviation {settled} m");
}

#[test]
fn concurrent_attacks_of_different_kinds_overlap() {
    // Flood and spoof simultaneously: both network attacks arm, bind
    // distinct source ports, and both deliver packets.
    let cfg = ScenarioConfig::builder()
        .attack_at(
            SimTime::from_secs(2),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .attack_at(
            SimTime::from_secs(2),
            AttackEvent::SpoofMotor(MotorSpoof::moderate()),
        )
        .duration(SimDuration::from_secs(5))
        .build();
    let result = Scenario::new(cfg).run();
    assert_eq!(result.attack_log.len(), 2);
    assert!(
        result.attack_packets > result.flood_sent,
        "spoof datagrams count on top of the flood: {} vs {}",
        result.attack_packets,
        result.flood_sent
    );
}

#[test]
fn cease_fire_ends_the_attack_window() {
    // Flood for 2 s, then cease fire: the offered packet count stays
    // near 2 s worth instead of running to the end of the flight.
    let flood = UdpFlood::against_motor_port();
    let cfg = ScenarioConfig::builder()
        .attack_at(SimTime::from_secs(2), AttackEvent::UdpFlood(flood))
        .attack_at(SimTime::from_secs(4), AttackEvent::CeaseFire)
        .duration(SimDuration::from_secs(10))
        .build();
    let result = Scenario::new(cfg).run();
    let expected = (flood.pps * 2.0) as u64;
    assert!(
        result.flood_sent <= expected + flood.pps as u64 / 100,
        "flood kept firing after cease-fire: {} > ~{expected}",
        result.flood_sent
    );
    assert!(
        result.flood_sent > expected / 2,
        "flood ran at all: {}",
        result.flood_sent
    );
    let log: Vec<&str> = result.attack_log.iter().map(|(_, n)| *n).collect();
    assert_eq!(log, ["udp-flood", "cease-fire"]);
}

#[test]
fn repeated_attacks_of_the_same_kind_schedule_independently() {
    // Two kill events: the second finds the controller already dead and
    // is harmless; the timeline still records both firings.
    let cfg = ScenarioConfig::builder()
        .attack_at(SimTime::from_secs(2), AttackEvent::KillComplex)
        .attack_at(SimTime::from_secs(3), AttackEvent::KillComplex)
        .duration(SimDuration::from_secs(6))
        .build();
    let result = Scenario::new(cfg).run();
    assert_eq!(result.attack_log.len(), 2);
    assert!(result.switch_time.is_some());
}

// ── Builder / preset equivalence ────────────────────────────────────────

#[test]
fn fig6_preset_equals_builder_form() {
    let built = ScenarioConfig::builder()
        .pilot(Pilot::CceSimplex)
        .attack_at(SimTime::from_secs(12), AttackEvent::KillComplex)
        .build();
    assert_eq!(built, ScenarioConfig::fig6());
}

#[test]
fn fig4_preset_equals_builder_form() {
    let built = ScenarioConfig::builder()
        .pilot(Pilot::HceDirect)
        .attack_at(
            SimTime::from_secs(10),
            AttackEvent::MemoryHog(BandwidthHog::isolbench()),
        )
        .memguard(false)
        .contention_gamma(containerdrone::framework::scenario::MEM_ATTACK_GAMMA)
        .build();
    assert_eq!(built, ScenarioConfig::fig4());
}

#[test]
fn fig7_preset_equals_builder_form() {
    let built = ScenarioConfig::builder()
        .pilot(Pilot::CceSimplex)
        .attack_at(
            SimTime::from_secs(8),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .build();
    assert_eq!(built, ScenarioConfig::fig7());
}

#[test]
fn healthy_preset_equals_empty_builder() {
    assert_eq!(ScenarioConfig::builder().build(), ScenarioConfig::healthy());
    assert!(ScenarioConfig::healthy().attacks.is_empty());
}

#[test]
fn builder_and_preset_runs_are_bit_identical() {
    // Equivalent configs must replay identically, not just compare equal.
    let preset = ScenarioConfig::fig6().with_duration(SimDuration::from_secs(14));
    let built = ScenarioConfig::builder()
        .attack_at(SimTime::from_secs(12), AttackEvent::KillComplex)
        .duration(SimDuration::from_secs(14))
        .build();
    let a = Scenario::new(preset).run();
    let b = Scenario::new(built).run();
    assert_eq!(a.telemetry.to_csv(), b.telemetry.to_csv());
}
