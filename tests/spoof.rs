//! Extension experiment: command spoofing — a protocol-valid attack that
//! only the *attitude-error* rule can catch (the detection mechanism the
//! paper reports for its Figure 7), plus the worst-case variant that
//! demonstrates the Simplex detection-latency limitation.

use containerdrone::framework::{Scenario, ScenarioConfig};
use containerdrone::sim::time::{SimDuration, SimTime};

#[test]
fn spoofed_commands_trip_the_attitude_rule_and_recover() {
    let result = Scenario::new(ScenarioConfig::spoof()).run();
    let attack = result.attack_onset.unwrap();

    // The forged frames are protocol-perfect: no CRC rejections, and the
    // receive-interval rule has nothing to complain about.
    assert_eq!(result.hce_parser_stats.crc_errors, 0);

    // The hostile commands physically upset the vehicle; the monitor's
    // *physical-state* rule catches it.
    let switch = result.switch_time.expect("monitor must switch");
    assert!(switch > attack);
    assert_eq!(
        result.monitor_events[0].rule, "attitude-error",
        "only the attitude rule can see a protocol-valid attack: {:?}",
        result.monitor_events
    );

    // Safety controller recovers the vehicle.
    assert!(!result.crashed(), "safety controller must save the drone");
    let settled = result.max_deviation(SimTime::from_secs(25), SimTime::from_secs(30));
    assert!(settled < 0.3, "recovered deviation {settled}");

    // And the upset was violent while it lasted.
    let upset = result.max_deviation(attack, SimTime::from_secs(30));
    assert!(
        upset > 0.2,
        "spoof must visibly upset the drone, got {upset}"
    );
}

#[test]
fn spoof_detection_is_faster_than_the_interval_timeout() {
    // The attitude rule reacts before the 600 ms interval timeout ever
    // could — the monitor's two rules complement each other.
    let result = Scenario::new(ScenarioConfig::spoof()).run();
    let attack = result.attack_onset.unwrap();
    let switch = result.switch_time.unwrap();
    let latency = switch.saturating_since(attack);
    assert!(latency < SimDuration::from_millis(600), "latency {latency}");
}

#[test]
fn violent_spoof_outruns_detection_latency() {
    // The Simplex limitation: a full-authority spoof from a 1 m hover
    // flips the vehicle faster than the stock attitude rule (20°, 250 ms
    // persistence) can confirm a violation — the monitor *does* fire, but
    // the crash precedes recovery. Detection must race physics.
    let result = Scenario::new(ScenarioConfig::spoof_violent()).run();
    assert!(result.crashed(), "worst-case spoof at low altitude crashes");
    let crash = result.crash.unwrap();
    assert_eq!(
        result.monitor_events[0].rule, "attitude-error",
        "the rule still detects the upset"
    );
    // The violation confirmation comes too late.
    if let Some(switch) = result.switch_time {
        assert!(
            switch + SimDuration::from_millis(500) > crash.time,
            "crash {} vs switch {switch}",
            crash.time
        );
    }
}
